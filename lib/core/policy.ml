module Mapping = Aspipe_model.Mapping
module Predictor = Aspipe_model.Predictor
module Search = Aspipe_model.Search

type serving = {
  backlog : int;
  arrival_rate : float;
  p99_sojourn : float;
  sojourn_slope : float;
  slo_threshold : float;
  choose_cheapest : headroom:float -> Mapping.t option;
}

type context = {
  time : float;
  current : Mapping.t;
  predictor : Predictor.t;
  observed_throughput : float;
  adopted_throughput : float;
  items_remaining : int;
  migration_stall : Mapping.t -> float;
  choose_best : unit -> Search.result;
  serving : serving option;
}

type decision = Keep | Remap of Mapping.t

type t = { name : string; decide : context -> decision }

let name t = t.name
let decide t ctx = t.decide ctx

let never () = { name = "never"; decide = (fun _ -> Keep) }

(* Shared gain/amortization test: switch to the search's winner only if the
   relative improvement clears [min_gain] and the time saved on the items
   still to flow exceeds the migration stall. *)
let consider_switch ~min_gain ctx =
  let result = ctx.choose_best () in
  let candidate = result.Search.mapping in
  if Mapping.equal candidate ctx.current then Keep
  else begin
    let current_rate = Predictor.evaluate ctx.predictor ctx.current in
    let candidate_rate = result.Search.score in
    if current_rate <= 0.0 then Remap candidate
    else begin
      let gain = (candidate_rate -. current_rate) /. current_rate in
      if gain <= min_gain then Keep
      else begin
        let remaining = Float.of_int ctx.items_remaining in
        let saved = remaining *. ((1.0 /. current_rate) -. (1.0 /. candidate_rate)) in
        if saved > ctx.migration_stall candidate then Remap candidate else Keep
      end
    end
  end

let periodic_best ?(min_gain = 0.1) () =
  { name = "periodic"; decide = (fun ctx -> consider_switch ~min_gain ctx) }

let threshold ?(drop = 0.25) ?(min_gain = 0.1) ?(cooldown = 30.0) () =
  let last_adaptation = ref neg_infinity in
  let decide ctx =
    let in_cooldown = ctx.time -. !last_adaptation < cooldown in
    let degraded =
      ctx.adopted_throughput > 0.0
      && ctx.observed_throughput < (1.0 -. drop) *. ctx.adopted_throughput
    in
    if in_cooldown || not degraded then Keep
    else begin
      match consider_switch ~min_gain ctx with
      | Keep -> Keep
      | Remap m ->
          last_adaptation := ctx.time;
          Remap m
    end
  in
  { name = "threshold"; decide }

let always_best () =
  { name = "always_best"; decide = (fun ctx -> consider_switch ~min_gain:0.01 ctx) }

(* Serving-only triggers: both are inert (Keep) when the context carries no
   serving signals, so they compose with the closed-stream engine without a
   special case there. *)

let scale_down ~headroom last ctx (s : serving) =
  match s.choose_cheapest ~headroom with
  | Some m when not (Mapping.equal m ctx.current) ->
      last := ctx.time;
      Remap m
  | _ -> Keep

let scale_up ~min_gain last ctx =
  match consider_switch ~min_gain ctx with
  | Keep -> Keep
  | Remap m ->
      last := ctx.time;
      Remap m

let queue_length ?(high = 64) ?(low = 8) ?(headroom = 1.2) ?(min_gain = 0.02)
    ?(cooldown = 30.0) () =
  let last = ref neg_infinity in
  let decide ctx =
    match ctx.serving with
    | None -> Keep
    | Some s ->
        if ctx.time -. !last < cooldown then Keep
        else if s.backlog > high then scale_up ~min_gain last ctx
        else if s.backlog < low then scale_down ~headroom last ctx s
        else Keep
  in
  { name = "queue_length"; decide }

let latency_gradient ?(margin = 0.8) ?(relax = 0.4) ?(headroom = 1.2) ?(min_gain = 0.02)
    ?(cooldown = 30.0) () =
  let last = ref neg_infinity in
  let decide ctx =
    match ctx.serving with
    | None -> Keep
    | Some s ->
        if ctx.time -. !last < cooldown || Float.is_nan s.p99_sojourn then Keep
        else begin
          (* Act before the breach: trigger when p99 is already inside the
             margin, or when its slope projects it past the SLO bound within
             one cooldown. *)
          let projected = s.p99_sojourn +. (s.sojourn_slope *. cooldown) in
          if s.p99_sojourn > margin *. s.slo_threshold || projected > s.slo_threshold then
            scale_up ~min_gain last ctx
          else if s.p99_sojourn < relax *. s.slo_threshold && s.sojourn_slope <= 0.0 then
            scale_down ~headroom last ctx s
          else Keep
        end
  in
  { name = "latency_gradient"; decide }

type failover = {
  enabled : bool;
  suspect_after : int;
  backoff : float;
  max_failovers : int;
}

let default_failover = { enabled = true; suspect_after = 2; backoff = 10.0; max_failovers = 16 }
let no_failover = { default_failover with enabled = false }
