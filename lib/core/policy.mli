(** Adaptation policies: when (and to what) the running pipeline re-maps.

    At every evaluation epoch the engine hands the policy a {!context} built
    from monitor forecasts and the execution trace; the policy answers
    {!decision}. Policies are values carrying their own state (cool-down
    clocks etc.), so distinct runs need distinct policy values — obtain them
    from the constructors below. *)

type serving = {
  backlog : int;  (** items injected but not yet departed *)
  arrival_rate : float;  (** observed arrivals/s over the last window *)
  p99_sojourn : float;
      (** windowed p99 latency estimate; [nan] before any departure *)
  sojourn_slope : float;
      (** d(p99)/dt across the last two windows (0 when unknown) *)
  slo_threshold : float;  (** the SLO latency bound, seconds *)
  choose_cheapest : headroom:float -> Aspipe_model.Mapping.t option;
      (** cheapest mapping (fewest distinct nodes, then best predicted
          rate) whose predicted throughput still covers
          [arrival_rate × headroom]; [None] when nothing qualifies *)
}
(** Signals only an open-arrival (serving) run can produce. The serving
    driver fills them in; the closed-stream engine passes [None] and the
    serving-only policies below degrade to [Keep]. *)

type context = {
  time : float;  (** current virtual time *)
  current : Aspipe_model.Mapping.t;
  predictor : Aspipe_model.Predictor.t;
      (** built from the freshest forecasts and calibrated work *)
  observed_throughput : float;  (** items/s over the last evaluation window *)
  adopted_throughput : float;
      (** what the model promised when the current mapping was adopted *)
  items_remaining : int;
  migration_stall : Aspipe_model.Mapping.t -> float;
      (** estimated stall (s) of switching to a candidate now *)
  choose_best : unit -> Aspipe_model.Search.result;
      (** run the mapping search under current beliefs *)
  serving : serving option;
      (** open-arrival signals; [None] on closed streams *)
}

type decision = Keep | Remap of Aspipe_model.Mapping.t

type t

val name : t -> string
val decide : t -> context -> decision

val never : unit -> t
(** The non-adaptive pipeline: always [Keep]. *)

val periodic_best : ?min_gain:float -> unit -> t
(** At every epoch, search for the best mapping under current beliefs and
    switch when its predicted throughput exceeds the current mapping's by
    more than [min_gain] (relative, default 0.1) {e and} the predicted time
    saved on the remaining items amortizes the migration stall. *)

val threshold :
  ?drop:float -> ?min_gain:float -> ?cooldown:float -> unit -> t
(** The paper-style trigger: only search when the observed throughput has
    dropped below [(1 − drop)] of the adopted expectation (default
    [drop = 0.25]), then apply the same gain/amortization test as
    {!periodic_best}; after an adaptation, sleep [cooldown] seconds
    (default 30) to avoid thrashing on monitor noise. *)

val always_best : unit -> t
(** Greedy oracle-style policy: switch whenever the search finds anything
    better that amortizes (min_gain = 0.01). Used as the clairvoyant upper
    bound when paired with perfect sensors. *)

(** {2 Serving (autoscaling) triggers}

    These read {!context.serving} and are inert ([Keep]) when it is
    [None], so they can only act inside an open-arrival run. *)

val queue_length :
  ?high:int ->
  ?low:int ->
  ?headroom:float ->
  ?min_gain:float ->
  ?cooldown:float ->
  unit ->
  t
(** Backlog hysteresis: scale {e up} (full mapping search plus the usual
    gain/amortization test) when more than [high] items are in flight
    (default 64), scale {e down} to the cheapest mapping still covering
    [arrival_rate × headroom] (default 1.2) when fewer than [low] (default
    8); sleep [cooldown] seconds (default 30) between actions. *)

val latency_gradient :
  ?margin:float ->
  ?relax:float ->
  ?headroom:float ->
  ?min_gain:float ->
  ?cooldown:float ->
  unit ->
  t
(** Latency-aware trigger acting {e before} the SLO is breached: scale up
    when windowed p99 exceeds [margin × slo_threshold] (default 0.8) or
    its slope projects it past the threshold within one cooldown; scale
    down to the cheapest adequate mapping when p99 sits below
    [relax × slo_threshold] (default 0.4) and is not rising. *)

(** {2 Failover}

    Unlike performance adaptation, failover is not a matter of taste: a
    stage held by a dead node finishes never. These knobs govern the
    adaptive engine's failure response, orthogonally to the mapping
    policy above. *)

type failover = {
  enabled : bool;  (** react to failure suspicion at all *)
  suspect_after : int;
      (** consecutive missed heartbeats before a node is suspected (the
          monitor's detection latency knob) *)
  backoff : float;
      (** seconds to wait after a committed failover before another may
          trigger — guards against remap storms while suspicion settles *)
  max_failovers : int;  (** hard cap per run; a retry budget *)
}

val default_failover : failover
(** enabled, suspect after 2 misses, 10 s backoff, at most 16 failovers. *)

val no_failover : failover
(** [default_failover] with [enabled = false]: suspicion is still
    published by the monitor but never acted on. *)
