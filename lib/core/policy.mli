(** Adaptation policies: when (and to what) the running pipeline re-maps.

    At every evaluation epoch the engine hands the policy a {!context} built
    from monitor forecasts and the execution trace; the policy answers
    {!decision}. Policies are values carrying their own state (cool-down
    clocks etc.), so distinct runs need distinct policy values — obtain them
    from the constructors below. *)

type context = {
  time : float;  (** current virtual time *)
  current : Aspipe_model.Mapping.t;
  predictor : Aspipe_model.Predictor.t;
      (** built from the freshest forecasts and calibrated work *)
  observed_throughput : float;  (** items/s over the last evaluation window *)
  adopted_throughput : float;
      (** what the model promised when the current mapping was adopted *)
  items_remaining : int;
  migration_stall : Aspipe_model.Mapping.t -> float;
      (** estimated stall (s) of switching to a candidate now *)
  choose_best : unit -> Aspipe_model.Search.result;
      (** run the mapping search under current beliefs *)
}

type decision = Keep | Remap of Aspipe_model.Mapping.t

type t

val name : t -> string
val decide : t -> context -> decision

val never : unit -> t
(** The non-adaptive pipeline: always [Keep]. *)

val periodic_best : ?min_gain:float -> unit -> t
(** At every epoch, search for the best mapping under current beliefs and
    switch when its predicted throughput exceeds the current mapping's by
    more than [min_gain] (relative, default 0.1) {e and} the predicted time
    saved on the remaining items amortizes the migration stall. *)

val threshold :
  ?drop:float -> ?min_gain:float -> ?cooldown:float -> unit -> t
(** The paper-style trigger: only search when the observed throughput has
    dropped below [(1 − drop)] of the adopted expectation (default
    [drop = 0.25]), then apply the same gain/amortization test as
    {!periodic_best}; after an adaptation, sleep [cooldown] seconds
    (default 30) to avoid thrashing on monitor noise. *)

val always_best : unit -> t
(** Greedy oracle-style policy: switch whenever the search finds anything
    better that amortizes (min_gain = 0.01). Used as the clairvoyant upper
    bound when paired with perfect sensors. *)

(** {2 Failover}

    Unlike performance adaptation, failover is not a matter of taste: a
    stage held by a dead node finishes never. These knobs govern the
    adaptive engine's failure response, orthogonally to the mapping
    policy above. *)

type failover = {
  enabled : bool;  (** react to failure suspicion at all *)
  suspect_after : int;
      (** consecutive missed heartbeats before a node is suspected (the
          monitor's detection latency knob) *)
  backoff : float;
      (** seconds to wait after a committed failover before another may
          trigger — guards against remap storms while suspicion settles *)
  max_failovers : int;  (** hard cap per run; a retry budget *)
}

val default_failover : failover
(** enabled, suspect after 2 misses, 10 s backoff, at most 16 failovers. *)

val no_failover : failover
(** [default_failover] with [enabled = false]: suspicion is still
    published by the monitor but never acted on. *)
