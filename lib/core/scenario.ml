module Engine = Aspipe_des.Engine
module Topology = Aspipe_grid.Topology
module Loadgen = Aspipe_grid.Loadgen
module Netgen = Aspipe_grid.Netgen
module Fault = Aspipe_fault.Fault
module Rng = Aspipe_util.Rng

type t = {
  name : string;
  make_topo : Engine.t -> Topology.t;
  loads : (int * Loadgen.profile) list;
  net_loads : ((int * int) * Loadgen.profile) list;
  faults : (int * Fault.profile) list;
  net_faults : ((int * int) * Fault.profile) list;
  stages : Aspipe_skel.Stage.t array;
  input : Aspipe_skel.Stream_spec.t;
  horizon : float;
}

let make ~name ~make_topo ?(loads = []) ?(net_loads = []) ?(faults = []) ?(net_faults = [])
    ~stages ~input ?(horizon = 1e6) () =
  if Array.length stages = 0 then invalid_arg "Scenario.make: empty pipeline";
  if horizon <= 0.0 then invalid_arg "Scenario.make: horizon must be positive";
  { name; make_topo; loads; net_loads; faults; net_faults; stages; input; horizon }

let build t ~rng =
  let engine = Engine.create () in
  let topo = t.make_topo engine in
  List.iter
    (fun (node, profile) ->
      let load_rng = Rng.split rng in
      Loadgen.apply_until ~rng:load_rng ~horizon:t.horizon topo node profile)
    t.loads;
  List.iter
    (fun ((a, b), profile) ->
      let net_rng = Rng.split rng in
      Netgen.apply_pair ~rng:net_rng ~horizon:t.horizon topo a b profile)
    t.net_loads;
  (* Fault schedules split the rng after (never between) the load splits, so
     scenarios without faults consume exactly the rng stream they always
     did — fault-free runs stay byte-identical. *)
  List.iter
    (fun (node, profile) ->
      let fault_rng = Rng.split rng in
      Fault.apply_node ~rng:fault_rng ~horizon:t.horizon topo node profile)
    t.faults;
  List.iter
    (fun ((a, b), profile) ->
      let fault_rng = Rng.split rng in
      Fault.apply_link ~rng:fault_rng ~horizon:t.horizon topo a b profile)
    t.net_faults;
  topo

let stage_count t = Array.length t.stages
