(** The calibration phase of the adaptive pattern.

    Before execution, each stage is probed: a handful of representative items
    run on a reference processor and their service times are measured. The
    resulting per-stage work estimates (mean ± spread, in work units) replace
    the unknown true costs in every model evaluation the engine performs.
    Estimates are noisy by construction — the probes sample the stage's true
    work distribution and the measurement itself can carry error — so the
    adaptive engine downstream is tested against realistic calibration
    quality. *)

type estimate = { mean_work : float; stddev : float; samples : int }

type t

val run :
  ?probes:int ->
  ?measurement_noise:float ->
  ?bus:Aspipe_obs.Bus.t ->
  rng:Aspipe_util.Rng.t ->
  Aspipe_skel.Stage.t array ->
  t
(** [probes] items per stage (default 5; must be ≥ 1). [measurement_noise]
    is the relative std-dev of the timing measurement (default 0.01).
    When [bus] is given, each probe measurement is emitted as a
    [Calibration_sample] event, so telemetry sinks see the inputs of the
    initial scheduling decision. *)

val stage_estimate : t -> int -> estimate
val work_vector : t -> float array
(** Mean estimated work per stage, the vector handed to {!Aspipe_model.Costspec.with_stage_work}. *)

val relative_error : t -> Aspipe_skel.Stage.t array -> float array
(** Per-stage |estimate − true mean| / true mean, for the calibration
    accuracy experiment. *)

val pp : Format.formatter -> t -> unit
