(** A reproducible experimental setting: topology recipe, background-load
    profiles, pipeline stages, input stream and time horizon.

    Scenarios are values; {!build} instantiates a fresh simulation
    environment (its own engine, nodes, links, scheduled load events) so that
    every run — adaptive, static, oracle, repeated seeds — starts from an
    identical world. *)

type t = {
  name : string;
  make_topo : Aspipe_des.Engine.t -> Aspipe_grid.Topology.t;
  loads : (int * Aspipe_grid.Loadgen.profile) list;
      (** per-node background-load profiles *)
  net_loads : ((int * int) * Aspipe_grid.Loadgen.profile) list;
      (** per-node-pair link-quality profiles (both directions) *)
  faults : (int * Aspipe_fault.Fault.profile) list;
      (** per-node crash/recovery schedules *)
  net_faults : ((int * int) * Aspipe_fault.Fault.profile) list;
      (** per-node-pair partition schedules (both directions) *)
  stages : Aspipe_skel.Stage.t array;
  input : Aspipe_skel.Stream_spec.t;
  horizon : float;  (** when self-rescheduling generators and monitors stop *)
}

val make :
  name:string ->
  make_topo:(Aspipe_des.Engine.t -> Aspipe_grid.Topology.t) ->
  ?loads:(int * Aspipe_grid.Loadgen.profile) list ->
  ?net_loads:((int * int) * Aspipe_grid.Loadgen.profile) list ->
  ?faults:(int * Aspipe_fault.Fault.profile) list ->
  ?net_faults:((int * int) * Aspipe_fault.Fault.profile) list ->
  stages:Aspipe_skel.Stage.t array ->
  input:Aspipe_skel.Stream_spec.t ->
  ?horizon:float ->
  unit ->
  t
(** Defaults: no loads, net loads or faults, horizon 1e6 s. *)

val build : t -> rng:Aspipe_util.Rng.t -> Aspipe_grid.Topology.t
(** Fresh engine + topology with all load profiles and fault schedules
    scheduled. Fault rng splits happen after all load splits, so a
    scenario with empty fault lists builds a world bit-identical to one
    built before faults existed. *)

val stage_count : t -> int
