module Rng = Aspipe_util.Rng
module Variate = Aspipe_util.Variate
module Stats = Aspipe_util.Stats
module Stage = Aspipe_skel.Stage

type estimate = { mean_work : float; stddev : float; samples : int }

type t = { per_stage : estimate array }

let run ?(probes = 5) ?(measurement_noise = 0.01) ?bus ~rng stages =
  if probes < 1 then invalid_arg "Calibration.run: need at least one probe";
  if measurement_noise < 0.0 then invalid_arg "Calibration.run: negative noise";
  let probe_stage stage_index (stage : Stage.t) =
    let acc = Stats.Welford.create () in
    for probe = 1 to probes do
      (* One probe = run one item through this stage on the reference
         processor and time it; the observed work is a draw from the stage's
         true distribution, blurred by measurement error. *)
      let true_work = Float.max 0.0 (Variate.sample rng stage.Stage.work) in
      let measured =
        if measurement_noise = 0.0 then true_work
        else Float.max 0.0 (true_work *. (1.0 +. Variate.normal rng ~mean:0.0 ~stddev:measurement_noise))
      in
      (match bus with
      | Some bus when Aspipe_obs.Bus.active bus ->
          Aspipe_obs.Bus.emit bus
            (Aspipe_obs.Event.Calibration_sample
               { stage = stage_index; probe = probe - 1; measured })
      | Some _ | None -> ());
      Stats.Welford.add acc measured
    done;
    {
      mean_work = Stats.Welford.mean acc;
      stddev = (if probes > 1 then Stats.Welford.stddev acc else 0.0);
      samples = probes;
    }
  in
  { per_stage = Array.mapi probe_stage stages }

let stage_estimate t i =
  if i < 0 || i >= Array.length t.per_stage then invalid_arg "Calibration.stage_estimate";
  t.per_stage.(i)

let work_vector t = Array.map (fun e -> e.mean_work) t.per_stage

let relative_error t stages =
  if Array.length stages <> Array.length t.per_stage then
    invalid_arg "Calibration.relative_error: stage count mismatch";
  Array.mapi
    (fun i (stage : Stage.t) ->
      let truth = Stage.mean_work stage in
      if truth <= 0.0 then 0.0 else Float.abs (t.per_stage.(i).mean_work -. truth) /. truth)
    stages

let pp ppf t =
  Array.iteri
    (fun i e ->
      Format.fprintf ppf "stage %d: work ≈ %.4g ± %.2g (%d probes)@." i e.mean_work e.stddev
        e.samples)
    t.per_stage
