module Rng = Aspipe_util.Rng
module Topology = Aspipe_grid.Topology
module Node = Aspipe_grid.Node
module Monitor = Aspipe_grid.Monitor
module Trace = Aspipe_grid.Trace
module Skel_sim = Aspipe_skel.Skel_sim
module Stage = Aspipe_skel.Stage
module Mapping = Aspipe_model.Mapping
module Costspec = Aspipe_model.Costspec
module Predictor = Aspipe_model.Predictor
module Search = Aspipe_model.Search

type outcome = {
  label : string;
  mapping : Mapping.t;
  trace : Trace.t;
  makespan : float;
  throughput : float;
}

(* Mirror Adaptive.run's rng-splitting order so the world and the per-item
   work draws are bit-identical across strategies for a given seed. *)
let split_rngs seed =
  let root = Rng.create seed in
  let env = Rng.split root in
  let _calib = Rng.split root in
  let sim = Rng.split root in
  (env, sim)

let run_static ~label ~mapping ~scenario ~seed =
  let env_rng, sim_rng = split_rngs seed in
  let topo = Scenario.build scenario ~rng:env_rng in
  let mapping = Mapping.of_array ~processors:(Topology.size topo) mapping in
  let trace = Trace.create () in
  let sim =
    Skel_sim.create ~rng:sim_rng ~topo ~stages:scenario.Scenario.stages
      ~mapping:(Mapping.to_array mapping) ~input:scenario.Scenario.input ~trace ()
  in
  Skel_sim.run_to_completion sim;
  { label; mapping; trace; makespan = Trace.makespan trace; throughput = Trace.throughput trace }

let dims scenario ~seed =
  (* Probe the topology size without disturbing the run seeds. *)
  let rng = Rng.create (seed + 0x5eed) in
  let topo = Scenario.build scenario ~rng in
  Topology.size topo

let static_round_robin ~scenario ~seed =
  let processors = dims scenario ~seed in
  let m = Mapping.round_robin ~stages:(Scenario.stage_count scenario) ~processors in
  run_static ~label:"static-round-robin" ~mapping:(Mapping.to_array m) ~scenario ~seed

let static_blocks ~scenario ~seed =
  let processors = dims scenario ~seed in
  let m = Mapping.blocks ~stages:(Scenario.stage_count scenario) ~processors in
  run_static ~label:"static-blocks" ~mapping:(Mapping.to_array m) ~scenario ~seed

let static_single_node ~scenario ~seed =
  let processors = dims scenario ~seed in
  let m = Mapping.all_on ~stages:(Scenario.stage_count scenario) ~processor:0 ~processors in
  run_static ~label:"static-single-node" ~mapping:(Mapping.to_array m) ~scenario ~seed

let static_random ~scenario ~seed =
  let processors = dims scenario ~seed in
  let rng = Rng.create (seed * 7919) in
  let m = Mapping.random rng ~stages:(Scenario.stage_count scenario) ~processors in
  run_static ~label:"static-random" ~mapping:(Mapping.to_array m) ~scenario ~seed

let ground_truth_spec scenario topo =
  Costspec.of_topology
    ~availability:(fun i -> Node.availability (Topology.node topo i))
    ~topo ~stages:scenario.Scenario.stages ~input:scenario.Scenario.input ()

let static_model_best ?(kind = Predictor.Analytic) ~scenario ~seed () =
  (* Choose on a throwaway environment (identical world), then execute. *)
  let env_rng, _ = split_rngs seed in
  let topo = Scenario.build scenario ~rng:env_rng in
  let predictor = Predictor.make ~kind (ground_truth_spec scenario topo) in
  let result = Predictor.choose predictor in
  run_static ~label:"static-model-best"
    ~mapping:(Mapping.to_array result.Search.mapping)
    ~scenario ~seed

let oracle_static ?(limit = 4096) ?fix_first_on ~scenario ~seed () =
  let processors = dims scenario ~seed in
  let stages = Scenario.stage_count scenario in
  let free = match fix_first_on with Some _ -> stages - 1 | None -> stages in
  (match Mapping.space_within ~stages:free ~processors ~cap:limit with
  | Some _ -> ()
  | None -> invalid_arg "Baselines.oracle_static: assignment space too large");
  let candidates = Mapping.enumerate ?fix_first_on ~stages ~processors () in
  let results =
    List.map
      (fun m ->
        let o = run_static ~label:"oracle-probe" ~mapping:(Mapping.to_array m) ~scenario ~seed in
        (Mapping.to_array m, o.makespan))
      candidates
  in
  let best_mapping, _ =
    List.fold_left
      (fun ((_, bt) as best) ((_, t) as cand) -> if t < bt then cand else best)
      (List.hd results) (List.tl results)
  in
  let best = run_static ~label:"oracle-static" ~mapping:best_mapping ~scenario ~seed in
  (best, results)

(* --- behaviour under faults ------------------------------------------ *)

type fault_outcome = {
  f_label : string;
  f_mapping : Mapping.t;
  f_trace : Trace.t;
  completed : int;
  total : int;
  finish : float option;  (* completion time; None = did not finish *)
  stall : string option;  (* the watchdog diagnostic when DNF *)
  restarts : int;
  items_lost : int;
}

(* A static run that survives fault-induced stalls: instead of raising like
   [run_static], report DNF with the partial progress and the watchdog's
   diagnosis. Crash+recover schedules may still complete (the simulator's
   same-node checkpoint replay) — what a static mapping can never do is
   route around a node that stays dead. *)
let static_faulty ?max_time ~label ~mapping ~scenario ~seed () =
  let env_rng, sim_rng = split_rngs seed in
  let topo = Scenario.build scenario ~rng:env_rng in
  let mapping = Mapping.of_array ~processors:(Topology.size topo) mapping in
  let trace = Trace.create () in
  let sim =
    Skel_sim.create ~rng:sim_rng ~topo ~stages:scenario.Scenario.stages
      ~mapping:(Mapping.to_array mapping) ~input:scenario.Scenario.input ~trace ()
  in
  let status = Skel_sim.run ?max_time sim in
  {
    f_label = label;
    f_mapping = mapping;
    f_trace = trace;
    completed = Skel_sim.items_completed sim;
    total = Skel_sim.items_total sim;
    finish = (match status with `Completed -> Some (Trace.makespan trace) | `Stalled _ -> None);
    stall = (match status with `Completed -> None | `Stalled d -> Some d);
    restarts = 0;
    items_lost = Skel_sim.items_lost_total sim;
  }

(* The naive fault-tolerance baseline: run statically; when the pipeline
   stalls, charge a detection timeout (counted from the last observed
   completion — the instant progress provably stopped), then restart the
   whole workload from scratch on a model-best mapping that avoids every
   node seen dead at detection time. Each phase rebuilds the identical
   world, so a permanent crash re-fires at its scheduled time but now hits
   a node the restarted mapping no longer uses. *)
let static_restart ?(detection_timeout = 30.0) ?(max_restarts = 3) ?max_time ~scenario ~seed ()
    =
  let rec phase ~restarts ~elapsed ~dead =
    let env_rng, sim_rng = split_rngs seed in
    let topo = Scenario.build scenario ~rng:env_rng in
    let availability i =
      if List.mem i dead then 1e-9 else Node.availability (Topology.node topo i)
    in
    let spec =
      Costspec.of_topology ~availability ~topo ~stages:scenario.Scenario.stages
        ~input:scenario.Scenario.input ()
    in
    let result = Predictor.choose (Predictor.make ~kind:Predictor.Analytic spec) in
    let mapping = result.Search.mapping in
    let trace = Trace.create () in
    let sim =
      Skel_sim.create ~rng:sim_rng ~topo ~stages:scenario.Scenario.stages
        ~mapping:(Mapping.to_array mapping) ~input:scenario.Scenario.input ~trace ()
    in
    let status = Skel_sim.run ?max_time sim in
    let completed = Skel_sim.items_completed sim in
    let total = Skel_sim.items_total sim in
    let base = { f_label = "static-restart"; f_mapping = mapping; f_trace = trace;
                 completed; total; finish = None; stall = None; restarts;
                 items_lost = Skel_sim.items_lost_total sim }
    in
    match status with
    | `Completed -> { base with finish = Some (elapsed +. Trace.makespan trace) }
    | `Stalled diagnostic ->
        let stalled_at = Trace.makespan trace in
        let detected = stalled_at +. detection_timeout in
        let now_dead =
          List.filter
            (fun i -> not (Node.up (Topology.node topo i)))
            (List.init (Topology.size topo) Fun.id)
        in
        let dead = List.sort_uniq compare (now_dead @ dead) in
        if restarts >= max_restarts then { base with stall = Some diagnostic }
        else phase ~restarts:(restarts + 1) ~elapsed:(elapsed +. detected) ~dead
  in
  phase ~restarts:0 ~elapsed:0.0 ~dead:[]

let clairvoyant ~scenario ~seed =
  let config =
    {
      Adaptive.default_config with
      policy = (fun () -> Policy.always_best ());
      sensor = Monitor.perfect_sensor;
      monitor_every = 2.0;
      evaluate_every = 5.0;
      probes = 50;
      measurement_noise = 0.0;
    }
  in
  Adaptive.run ~config ~scenario ~seed ()
