(** The comparison points every adaptive-pattern experiment needs.

    All baselines run in a world rebuilt from the same [(scenario, seed)]
    pair the adaptive run used — identical load events, identical per-item
    work draws — so differences in outcome are attributable to the mapping
    strategy alone. *)

type outcome = {
  label : string;
  mapping : Aspipe_model.Mapping.t;  (** the static assignment used *)
  trace : Aspipe_grid.Trace.t;
  makespan : float;
  throughput : float;
}

val run_static :
  label:string -> mapping:int array -> scenario:Scenario.t -> seed:int -> outcome
(** Execute the pipeline with a fixed mapping, no adaptation. *)

val static_round_robin : scenario:Scenario.t -> seed:int -> outcome
val static_blocks : scenario:Scenario.t -> seed:int -> outcome
val static_single_node : scenario:Scenario.t -> seed:int -> outcome
(** Everything on node 0. *)

val static_random : scenario:Scenario.t -> seed:int -> outcome
(** A uniformly random assignment (derived from [seed]). *)

val static_model_best :
  ?kind:Aspipe_model.Predictor.kind -> scenario:Scenario.t -> seed:int -> unit -> outcome
(** The mapping the performance model picks from ground truth at t = 0 and
    true stage means — the best non-clairvoyant static schedule available. *)

val oracle_static :
  ?limit:int ->
  ?fix_first_on:int ->
  scenario:Scenario.t ->
  seed:int ->
  unit ->
  outcome * (int array * float) list
(** Simulate {e every} mapping of the (bounded) assignment space in the
    identical world and return the one with the smallest makespan, plus all
    per-mapping makespans. [fix_first_on] pins stage 0's processor (use it
    when the input data's location is fixed, as in the paper's tables).
    Raises [Invalid_argument] if the space exceeds [limit] (default 4096)
    candidates. This is the true static optimum. *)

val clairvoyant : scenario:Scenario.t -> seed:int -> Adaptive.report
(** The adaptive engine with perfect sensors, dense monitoring, noise-free
    calibration and an eager policy — the practical upper bound on what
    adaptation can deliver. *)

(** {2 Behaviour under faults}

    What non-adaptive strategies do when the scenario's fault schedule
    kills nodes: stall (DNF) or naively restart. These give the fault
    experiments their contrast with adaptive failover. *)

type fault_outcome = {
  f_label : string;
  f_mapping : Aspipe_model.Mapping.t;  (** the (last) static assignment used *)
  f_trace : Aspipe_grid.Trace.t;  (** the last phase's trace *)
  completed : int;  (** items delivered in the last phase *)
  total : int;
  finish : float option;
      (** wall-clock completion time including any detection/restart
          charges; [None] = did not finish *)
  stall : string option;  (** the stall-watchdog diagnostic when DNF *)
  restarts : int;
  items_lost : int;  (** item-loss events in the last phase *)
}

val static_faulty :
  ?max_time:float ->
  label:string ->
  mapping:int array ->
  scenario:Scenario.t ->
  seed:int ->
  unit ->
  fault_outcome
(** [run_static] that reports a fault-induced stall as a DNF outcome (with
    partial progress and the watchdog's diagnosis) instead of raising.
    Crash+recover schedules may still complete via the simulator's
    same-node checkpoint replay; a permanently dead node means DNF. *)

val static_restart :
  ?detection_timeout:float ->
  ?max_restarts:int ->
  ?max_time:float ->
  scenario:Scenario.t ->
  seed:int ->
  unit ->
  fault_outcome
(** The naive fault-tolerance baseline: run the model-best static mapping;
    on a stall, charge [detection_timeout] (default 30 s) from the moment
    progress stopped, then restart the whole workload from item 0 on a
    model-best mapping avoiding every node seen dead at detection — up to
    [max_restarts] (default 3) times. [finish] accumulates the abandoned
    phases plus the completing one; no work survives a restart, which is
    exactly the penalty adaptive failover's checkpoint replay avoids. *)
