module Engine = Aspipe_des.Engine
module Rng = Aspipe_util.Rng
module Topology = Aspipe_grid.Topology
module Node = Aspipe_grid.Node
module Monitor = Aspipe_grid.Monitor
module Trace = Aspipe_grid.Trace
module Skel_sim = Aspipe_skel.Skel_sim
module Mapping = Aspipe_model.Mapping
module Costspec = Aspipe_model.Costspec
module Predictor = Aspipe_model.Predictor
module Search = Aspipe_model.Search

let log_src = Logs.Src.create "aspipe.adaptive" ~doc:"Adaptive pipeline engine"

module Log = (val Logs.src_log log_src)

type config = {
  policy : unit -> Policy.t;
  evaluator : Predictor.kind;
  monitor_every : float;
  evaluate_every : float;
  sensor : Monitor.sensor_spec;
  probes : int;
  measurement_noise : float;
  migration : Migration.t;
  fix_first_on : int option;
  initial_resource_reading : bool;
  failover : Policy.failover;
  exhaustive_limit : int;
}

let default_config =
  {
    policy = (fun () -> Policy.threshold ());
    evaluator = Predictor.Analytic;
    monitor_every = 5.0;
    evaluate_every = 10.0;
    sensor = Monitor.default_sensor;
    probes = 5;
    measurement_noise = 0.01;
    migration = Migration.default;
    fix_first_on = None;
    initial_resource_reading = true;
    failover = Policy.default_failover;
    exhaustive_limit = Search.default_exhaustive_limit;
  }

type report = {
  scenario_name : string;
  policy_name : string;
  trace : Trace.t;
  calibration : Calibration.t;
  initial_mapping : Mapping.t;
  final_mapping : Mapping.t;
  makespan : float;
  throughput : float;
  adaptation_count : int;
  policy_evaluations : int;
  monitor_samples : int;
  failover_count : int;
  items_lost : int;
  items_redispatched : int;
}

let run ?(config = default_config) ?instrument ~scenario ~seed () =
  let root_rng = Rng.create seed in
  let env_rng = Rng.split root_rng in
  let calib_rng = Rng.split root_rng in
  let sim_rng = Rng.split root_rng in
  let monitor_rng = Rng.split root_rng in
  let topo = Scenario.build scenario ~rng:env_rng in
  let engine = Topology.engine topo in
  let bus = Engine.bus engine in
  (* Telemetry sinks attach before anything observable happens, so they see
     the calibration samples and monitor readings behind every decision. *)
  (match instrument with Some f -> f bus | None -> ());
  let stages = scenario.Scenario.stages in
  let input = scenario.Scenario.input in
  let policy = config.policy () in

  (* Phase 1: calibration. *)
  let calibration =
    Calibration.run ~probes:config.probes ~measurement_noise:config.measurement_noise ~bus
      ~rng:calib_rng stages
  in
  let calibrated_work = Calibration.work_vector calibration in

  (* Phase 2: initial scheduling. *)
  let monitor =
    Monitor.create ~sensor:config.sensor ~suspect_after:config.failover.Policy.suspect_after
      ~rng:monitor_rng ~every:config.monitor_every ~horizon:scenario.Scenario.horizon topo
  in
  let spec_from ?link_quality ?user_link_quality availability =
    Costspec.with_stage_work
      (Costspec.of_topology ~availability ?link_quality ?user_link_quality ~topo ~stages ~input
         ())
      calibrated_work
  in
  (* Suspected nodes get availability ~0 rather than their forecast: a dead
     node answers no sensor, so its forecast is stale pre-crash history that
     would happily invite the search to map back onto the corpse. Suspicion
     is observable monitor state, so the performance policy is entitled to
     it too — and fault-free runs never suspect anyone, leaving this path
     bit-identical to the pre-fault build. *)
  let belief_spec () =
    spec_from
      ~link_quality:(fun ~src ~dst -> Monitor.link_forecast monitor ~src ~dst)
      ~user_link_quality:(Monitor.user_link_forecast monitor)
      (fun i -> if Monitor.suspected monitor i then 1e-9 else Monitor.node_forecast monitor i)
  in
  let initial_spec =
    if config.initial_resource_reading then
      spec_from (fun i -> Node.availability (Topology.node topo i))
    else
      spec_from
        ~link_quality:(fun ~src:_ ~dst:_ -> 1.0)
        ~user_link_quality:(fun _ -> 1.0)
        (fun _ -> 1.0)
  in
  let initial_predictor = Predictor.make ~kind:config.evaluator initial_spec in
  let initial_search =
    match config.fix_first_on with
    | None -> Predictor.choose ~exhaustive_limit:config.exhaustive_limit initial_predictor
    | Some p ->
        Predictor.choose ~fix_first_on:p ~exhaustive_limit:config.exhaustive_limit
          initial_predictor
  in
  let initial_mapping = initial_search.Search.mapping in
  Log.info (fun m ->
      m "[%s] initial mapping %s (predicted %.4f items/s, %d candidates scored)"
        scenario.Scenario.name
        (Mapping.to_string initial_mapping)
        initial_search.Search.score initial_search.Search.evaluated);

  (* Phase 3 & 4: execution with monitoring and adaptation. *)
  let trace = Trace.create () in
  let sim =
    Skel_sim.create ~rng:sim_rng ~topo ~stages ~mapping:(Mapping.to_array initial_mapping)
      ~input ~trace ()
  in
  let adopted_throughput = ref initial_search.Search.score in
  let last_eval_time = ref 0.0 in
  let last_eval_completed = ref 0 in
  let evaluations = ref 0 in
  let adaptation_count = ref 0 in
  let failover_count = ref 0 in
  let last_failover = ref neg_infinity in
  (* Failure response, checked before the performance policy: a suspected
     node holding a stage makes throughput arguments moot — the workload
     simply never finishes without a re-map. The search is re-run over the
     belief spec with suspects' availability crushed to ~0, which makes it
     route around the dead nodes with the same machinery that balances the
     live ones. *)
  let try_failover () =
    let current = Skel_sim.mapping sim in
    let suspect_mapped =
      config.failover.Policy.enabled
      && Array.exists (fun node -> Monitor.suspected monitor node) current
    in
    if
      suspect_mapped
      && Engine.now engine -. !last_failover >= config.failover.Policy.backoff
      && !failover_count < config.failover.Policy.max_failovers
    then begin
      let predictor = Predictor.make ~kind:config.evaluator (belief_spec ()) in
      let result =
        match config.fix_first_on with
        | None -> Predictor.choose ~exhaustive_limit:config.exhaustive_limit predictor
        | Some p ->
            Predictor.choose ~fix_first_on:p ~exhaustive_limit:config.exhaustive_limit
              predictor
      in
      let target = Mapping.to_array result.Search.mapping in
      if target <> current then begin
        let replayed = List.length (Skel_sim.lost_items sim) in
        Skel_sim.failover sim target;
        incr failover_count;
        last_failover := Engine.now engine;
        adopted_throughput := result.Search.score;
        Aspipe_obs.Bus.emit bus
          (Aspipe_obs.Event.Failover_committed
             { mapping_before = current; mapping_after = target; items_redispatched = replayed });
        Log.info (fun m ->
            m "[%s] t=%.1f failover %s -> %s (%d checkpointed items replayed)"
              scenario.Scenario.name (Engine.now engine)
              (Mapping.to_string (Mapping.of_array ~processors:(Topology.size topo) current))
              (Mapping.to_string result.Search.mapping)
              replayed);
        true
      end
      else false
    end
    else false
  in
  let evaluate () =
    if Skel_sim.finished sim then false
    else if Skel_sim.migrating sim then true (* let the move settle first *)
    else if try_failover () then true
    else begin
      incr evaluations;
      let now = Engine.now engine in
      let completed = Skel_sim.items_completed sim in
      let window = now -. !last_eval_time in
      let observed =
        if window <= 0.0 then 0.0
        else Float.of_int (completed - !last_eval_completed) /. window
      in
      last_eval_time := now;
      last_eval_completed := completed;
      let spec = belief_spec () in
      let predictor = Predictor.make ~kind:config.evaluator spec in
      let current = Mapping.of_array ~processors:(Topology.size topo) (Skel_sim.mapping sim) in
      let ctx =
        {
          Policy.time = now;
          current;
          predictor;
          observed_throughput = observed;
          adopted_throughput = !adopted_throughput;
          items_remaining = Skel_sim.items_total sim - completed;
          migration_stall =
            (fun target -> Migration.stall_seconds config.migration ~spec ~stages ~current ~target);
          choose_best =
            (fun () ->
              match config.fix_first_on with
              | None ->
                  Predictor.choose ~exhaustive_limit:config.exhaustive_limit predictor
              | Some p ->
                  Predictor.choose ~fix_first_on:p
                    ~exhaustive_limit:config.exhaustive_limit predictor);
          serving = None;
        }
      in
      Aspipe_obs.Bus.emit bus
        (Aspipe_obs.Event.Adaptation_considered
           {
             mapping = Mapping.to_array current;
             observed_throughput = observed;
             adopted_throughput = !adopted_throughput;
           });
      (match Policy.decide policy ctx with
      | Policy.Keep ->
          Aspipe_obs.Bus.emit bus
            (Aspipe_obs.Event.Adaptation_rejected
               { mapping = Mapping.to_array current; observed_throughput = observed });
          Log.debug (fun m ->
              m "[%s] t=%.1f keep %s (observed %.3f, adopted %.3f)" scenario.Scenario.name now
                (Mapping.to_string current) observed !adopted_throughput)
      | Policy.Remap target ->
          let stall = Migration.stall_seconds config.migration ~spec ~stages ~current ~target in
          let gain = Predictor.evaluate predictor target -. Predictor.evaluate predictor current in
          ignore (Skel_sim.remap sim (Mapping.to_array target));
          incr adaptation_count;
          (* The committed event reaches the trace through its bus
             subscription — the bus, not the trace, is the system of
             record. *)
          Aspipe_obs.Bus.emit bus
            (Aspipe_obs.Event.Adaptation_committed
               {
                 mapping_before = Mapping.to_array current;
                 mapping_after = Mapping.to_array target;
                 predicted_gain = gain;
                 migration_cost = stall;
               });
          adopted_throughput := Predictor.evaluate predictor target;
          Log.info (fun m ->
              m "[%s] t=%.1f remap %s -> %s (gain %.3f items/s, stall %.2f s)"
                scenario.Scenario.name now (Mapping.to_string current)
                (Mapping.to_string target) gain stall));
      true
    end
  in
  Engine.periodic engine ~every:config.evaluate_every evaluate;
  Skel_sim.run_to_completion sim;
  let final_mapping =
    Mapping.of_array ~processors:(Topology.size topo) (Skel_sim.mapping sim)
  in
  {
    scenario_name = scenario.Scenario.name;
    policy_name = Policy.name policy;
    trace;
    calibration;
    initial_mapping;
    final_mapping;
    makespan = Trace.makespan trace;
    throughput = Trace.throughput trace;
    adaptation_count = !adaptation_count;
    policy_evaluations = !evaluations;
    monitor_samples = Monitor.samples_taken monitor;
    failover_count = !failover_count;
    items_lost = Skel_sim.items_lost_total sim;
    items_redispatched = Skel_sim.items_redispatched_total sim;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>scenario %s, policy %s:@ initial %s -> final %s@ makespan %.2f s, throughput %.4f \
     items/s@ %d adaptations over %d evaluations (%d monitor samples)%t@]"
    r.scenario_name r.policy_name
    (Mapping.to_string r.initial_mapping)
    (Mapping.to_string r.final_mapping)
    r.makespan r.throughput r.adaptation_count r.policy_evaluations r.monitor_samples
    (fun ppf ->
      if r.failover_count > 0 || r.items_lost > 0 then
        Format.fprintf ppf "@ %d failovers; %d items lost, %d re-dispatched" r.failover_count
          r.items_lost r.items_redispatched)
