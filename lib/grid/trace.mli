(** Execution traces: everything the simulated pipeline emits.

    The trace is both the measurement instrument (throughput, completion
    time, per-stage service samples feed the experiments) and the
    observability channel the adaptive engine itself uses (windowed output
    rate). *)

type service = { item : int; stage : int; node : int; start : float; finish : float }
type transfer = { item : int; from_stage : int; src : int; dst : int; start : float; finish : float }
type adaptation = {
  at : float;
  mapping_before : int array;
  mapping_after : int array;
  predicted_gain : float;
  migration_cost : float;
}

type t

val create : unit -> t

val record_service : t -> service -> unit
val record_transfer : t -> transfer -> unit
val record_completion : t -> item:int -> time:float -> unit
val record_adaptation : t -> adaptation -> unit

val subscribe : t -> Aspipe_obs.Bus.t -> unit
(** Attach this trace as a sink on an event bus: [Service_finish],
    [Transfer], [Completion] and [Adaptation_committed] events are
    translated into the corresponding records (other events are ignored).
    {!Aspipe_skel.Skel_sim.create} does this automatically, making the bus
    the single source of truth while the trace keeps its classic shape. *)

val completions : t -> (int * float) array
(** (item, departure time), in departure order. *)

val items_completed : t -> int

val makespan : t -> float
(** Time of the last completion (0 if none). *)

val throughput : t -> float
(** [items_completed / makespan]; 0 when nothing completed. *)

val throughput_after : t -> float -> float
(** [throughput_after t t0] — steady-state estimate ignoring completions
    before [t0] (pipeline fill). *)

val throughput_series : t -> window:float -> (float * float) array
(** Windowed output rate: for each window [\[k·w, (k+1)·w)], the number of
    completions divided by [w], stamped at the window's midpoint. *)

val services : t -> service list
(** In recording order. *)

val service_times : t -> stage:int -> float array
(** Durations of every service of [stage]. *)

val services_on_node : t -> node:int -> int
val transfers : t -> transfer list
val adaptations : t -> adaptation list
(** In time order. *)

val sojourns : t -> (int * float) array
(** Per-item sojourn series, in completion order: [(item, sojourn)] for
    every completed item whose entry instant is known. The entry instant is
    the item's open-arrival stamp when the trace recorded a
    [Aspipe_obs.Event.Sojourn] event for it (serving runs), and its first
    service start otherwise — so histograms and quantiles are computable
    from any recorded trace, not just the mean. *)

val mean_sojourn : t -> float
(** Mean of the {!sojourns} series ([nan] if nothing completed). *)
