module Engine = Aspipe_des.Engine
module Rng = Aspipe_util.Rng
module Variate = Aspipe_util.Variate
module Forecast = Aspipe_util.Forecast

type sensor_spec = { noise : float; dropout : float }

let default_sensor = { noise = 0.02; dropout = 0.01 }
let perfect_sensor = { noise = 0.0; dropout = 0.0 }

type t = {
  topo : Topology.t;
  every : float;
  forecasters : Forecast.t array;
  link_forecasters : Forecast.t array array;  (* [src].[dst], diagonal unused *)
  user_link_forecasters : Forecast.t array;
  last : float option array;
  missed : int array;  (* consecutive unanswered heartbeats per node *)
  suspect_after : int;
  mutable samples : int;
}

let create ?(sensor = default_sensor) ?(suspect_after = 2) ?forecaster ~rng ~every ~horizon
    topo =
  if every <= 0.0 then invalid_arg "Monitor.create: period must be positive";
  if suspect_after < 1 then invalid_arg "Monitor.create: suspect_after must be at least 1";
  let make_forecaster =
    match forecaster with Some f -> f | None -> fun () -> Forecast.adaptive ~fallback:1.0 ()
  in
  let n = Topology.size topo in
  let t =
    {
      topo;
      every;
      forecasters = Array.init n (fun _ -> make_forecaster ());
      link_forecasters = Array.init n (fun _ -> Array.init n (fun _ -> make_forecaster ()));
      user_link_forecasters = Array.init n (fun _ -> make_forecaster ());
      last = Array.make n None;
      missed = Array.make n 0;
      suspect_after;
      samples = 0;
    }
  in
  let engine = Topology.engine topo in
  let bus = Engine.bus engine in
  let module Event = Aspipe_obs.Event in
  let sense truth =
    if Variate.bernoulli rng ~p:sensor.dropout then None
    else begin
      let observed =
        if sensor.noise = 0.0 then truth
        else truth *. (1.0 +. Variate.normal rng ~mean:0.0 ~stddev:sensor.noise)
      in
      Some (Float.min 1.0 (Float.max 0.0 observed))
    end
  in
  Engine.periodic engine ~every (fun () ->
      for i = 0 to n - 1 do
        (* Heartbeat first: a crashed node does not answer its sensor at
           all — no sample, no rng draws — and each silent period counts
           toward failure suspicion. *)
        (if not (Node.up (Topology.node topo i)) then t.missed.(i) <- t.missed.(i) + 1
         else begin
           t.missed.(i) <- 0;
           match sense (Node.availability (Topology.node topo i)) with
           | Some observed ->
               if Aspipe_obs.Bus.active bus then begin
                 Aspipe_obs.Bus.emit bus
                   (Event.Monitor_sample { subject = Event.Node i; observed });
                 Aspipe_obs.Bus.emit bus
                   (Event.Forecast_update
                      {
                        subject = Event.Node i;
                        predicted = Forecast.predict t.forecasters.(i);
                        observed;
                      })
               end;
               Forecast.observe t.forecasters.(i) observed;
               t.last.(i) <- Some observed;
               t.samples <- t.samples + 1
           | None -> ()
         end);
        (match sense (Link.quality (Topology.user_link topo i)) with
        | Some observed ->
            if Aspipe_obs.Bus.active bus then
              Aspipe_obs.Bus.emit bus
                (Event.Monitor_sample { subject = Event.User_link i; observed });
            Forecast.observe t.user_link_forecasters.(i) observed;
            t.samples <- t.samples + 1
        | None -> ());
        for j = 0 to n - 1 do
          if i <> j then
            match sense (Link.quality (Topology.link topo ~src:i ~dst:j)) with
            | Some observed ->
                if Aspipe_obs.Bus.active bus then
                  Aspipe_obs.Bus.emit bus
                    (Event.Monitor_sample
                       { subject = Event.Link { src = i; dst = j }; observed });
                Forecast.observe t.link_forecasters.(i).(j) observed;
                t.samples <- t.samples + 1
            | None -> ()
        done
      done;
      Engine.now engine < horizon);
  t

let every t = t.every

let node_forecast t i =
  let f = Forecast.predict t.forecasters.(i) in
  Float.min 1.0 (Float.max 0.0 f)

let clamp01 x = Float.min 1.0 (Float.max 0.0 x)

let link_forecast t ~src ~dst =
  if src = dst then 1.0 else clamp01 (Forecast.predict t.link_forecasters.(src).(dst))

let user_link_forecast t i = clamp01 (Forecast.predict t.user_link_forecasters.(i))

let last_observation t i = t.last.(i)
let samples_taken t = t.samples
let suspected t i = t.missed.(i) >= t.suspect_after

let suspects t =
  let acc = ref [] in
  for i = Array.length t.missed - 1 downto 0 do
    if suspected t i then acc := i :: !acc
  done;
  !acc
let forecast_error t i = Forecast.mae t.forecasters.(i)
