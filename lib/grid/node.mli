(** A grid processor: a base speed modulated by a time-varying availability
    and an up/down liveness state.

    Availability is the fraction of the CPU left for the pipeline by
    background (non-dedicated) load — 1.0 means dedicated, 0.0 means the node
    is completely stolen. The node's FCFS server serves whatever stages are
    mapped to it, one item at a time, at rate
    [base_speed × availability × up].

    Liveness is distinct from availability: an availability of 0 merely
    stalls in-flight work (it resumes when load lifts), whereas a {e crash}
    ({!set_up}[ t false]) means the process is gone — simulators drop the
    node's in-service and queued items, and a {!Aspipe_obs.Event.Node_crashed}
    / [Node_recovered] event is emitted on the engine bus at each
    transition. *)

type t

val create :
  Aspipe_des.Engine.t -> id:int -> ?name:string -> speed:float -> unit -> t
(** [speed] is in abstract work units per second; must be positive. *)

val id : t -> int
val name : t -> string
val base_speed : t -> float

val availability : t -> float
val set_availability : t -> float -> unit
(** Clamped to [\[0, 1\]]. Updating re-derives the server rate, which
    re-times any in-flight service. *)

val up : t -> bool
(** Liveness; nodes start up. *)

val set_up : t -> bool -> unit
(** Crash ([false]) or recover ([true]) the node. Idempotent; on an actual
    transition the derived server rate is re-driven (down forces rate 0)
    and the matching fault event is emitted on the engine bus. *)

val subscribe_up : t -> (up:bool -> unit) -> unit
(** Called on every liveness transition, after the rate has been
    re-derived. *)

val effective_rate : t -> float
(** [base_speed × availability × up], in work units per second. *)

val server : t -> Aspipe_des.Server.t
val availability_history : t -> Aspipe_util.Timeseries.t

val up_history : t -> Aspipe_util.Timeseries.t
(** The liveness signal's recorded history (1 = up, 0 = down). *)
