module Engine = Aspipe_des.Engine
module Signal = Aspipe_des.Signal
module Server = Aspipe_des.Server

type t = {
  id : int;
  name : string;
  engine : Engine.t;
  base_speed : float;
  availability : Signal.t;
  up_signal : Signal.t;  (* 1.0 = up, 0.0 = crashed *)
  rate : Signal.t;
  server : Server.t;
}

let create engine ~id ?name ~speed () =
  if speed <= 0.0 then invalid_arg "Node.create: speed must be positive";
  let name = match name with Some n -> n | None -> Printf.sprintf "node%d" id in
  let availability = Signal.create engine 1.0 in
  let up_signal = Signal.create engine 1.0 in
  let rate = Signal.create engine speed in
  (* The effective rate folds both modulations in; while the node is up the
     product is numerically [speed × availability] exactly, so fault-free
     runs are bit-identical to the pre-fault model. *)
  let rederive () =
    Signal.set rate (speed *. Signal.get availability *. Signal.get up_signal)
  in
  Signal.subscribe availability (fun ~old_value:_ ~new_value:_ -> rederive ());
  Signal.subscribe up_signal (fun ~old_value:_ ~new_value:_ -> rederive ());
  let server = Server.create engine ~name ~rate in
  { id; name; engine; base_speed = speed; availability; up_signal; rate; server }

let id t = t.id
let name t = t.name
let base_speed t = t.base_speed
let availability t = Signal.get t.availability

let set_availability t a =
  let a = Float.min 1.0 (Float.max 0.0 a) in
  Signal.set t.availability a

let up t = Signal.get t.up_signal > 0.5

let set_up t v =
  let was = up t in
  if v <> was then begin
    Signal.set t.up_signal (if v then 1.0 else 0.0);
    let bus = Engine.bus t.engine in
    if v then Aspipe_obs.Bus.emit bus (Aspipe_obs.Event.Node_recovered { node = t.id })
    else Aspipe_obs.Bus.emit bus (Aspipe_obs.Event.Node_crashed { node = t.id })
  end

let subscribe_up t f =
  Signal.subscribe t.up_signal (fun ~old_value:_ ~new_value -> f ~up:(new_value > 0.5))

let effective_rate t = Signal.get t.rate
let server t = t.server
let availability_history t = Signal.history t.availability
let up_history t = Signal.history t.up_signal
