type service = { item : int; stage : int; node : int; start : float; finish : float }
type transfer = { item : int; from_stage : int; src : int; dst : int; start : float; finish : float }
type adaptation = {
  at : float;
  mapping_before : int array;
  mapping_after : int array;
  predicted_gain : float;
  migration_cost : float;
}

type t = {
  mutable services : service list;
  mutable transfers : transfer list;
  mutable completions : (int * float) list;
  mutable adaptations : adaptation list;
  first_start : (int, float) Hashtbl.t;
  arrivals : (int, float) Hashtbl.t;
      (* open-arrival stamps from Sojourn events; preferred over first_start
         when present, so serving traces measure the full queueing delay *)
}

let create () =
  {
    services = [];
    transfers = [];
    completions = [];
    adaptations = [];
    first_start = Hashtbl.create 64;
    arrivals = Hashtbl.create 64;
  }

let record_service t (s : service) =
  if not (Hashtbl.mem t.first_start s.item) then Hashtbl.add t.first_start s.item s.start;
  t.services <- s :: t.services

let record_transfer t (tr : transfer) = t.transfers <- tr :: t.transfers
let record_completion t ~item ~time = t.completions <- (item, time) :: t.completions
let record_adaptation t a = t.adaptations <- a :: t.adaptations

(* The trace is one sink among others on the event bus: the simulators emit
   structured events and this translation rebuilds the classic record lists
   from them, so every post-hoc consumer (experiments, trace_stats, the
   adaptive engine's windowed throughput) keeps working unchanged while the
   bus stays the single source of truth. *)
let subscribe t bus =
  let module Event = Aspipe_obs.Event in
  ignore
    (Aspipe_obs.Bus.subscribe bus (fun (event : Event.t) ->
         match event.payload with
         | Event.Service_finish { item; stage; node; start } ->
             record_service t { item; stage; node; start; finish = event.time }
         | Event.Transfer { item; from_stage; src; dst; start; bytes = _ } ->
             record_transfer t { item; from_stage; src; dst; start; finish = event.time }
         | Event.Completion { item } -> record_completion t ~item ~time:event.time
         | Event.Sojourn { item; arrival } ->
             if not (Hashtbl.mem t.arrivals item) then Hashtbl.add t.arrivals item arrival
         | Event.Adaptation_committed
             { mapping_before; mapping_after; predicted_gain; migration_cost } ->
             record_adaptation t
               { at = event.time; mapping_before; mapping_after; predicted_gain; migration_cost }
         | Event.Service_start _ | Event.Slo_window _ | Event.Queue_sample _
         | Event.Calibration_sample _ | Event.Monitor_sample _ | Event.Forecast_update _
         | Event.Adaptation_considered _ | Event.Adaptation_rejected _ | Event.Node_crashed _
         | Event.Node_recovered _ | Event.Item_lost _ | Event.Item_redispatched _
         | Event.Failover_committed _ ->
             ()))

let completions t = Array.of_list (List.rev t.completions)
let items_completed t = List.length t.completions

let makespan t =
  match t.completions with [] -> 0.0 | (_, time) :: _ -> time

let throughput t =
  let span = makespan t in
  if span <= 0.0 then 0.0 else Float.of_int (items_completed t) /. span

let throughput_after t t0 =
  let late = List.filter (fun (_, time) -> time >= t0) t.completions in
  match (late, makespan t) with
  | [], _ -> 0.0
  | _, span when span <= t0 -> 0.0
  | late, span -> Float.of_int (List.length late) /. (span -. t0)

let throughput_series t ~window =
  if window <= 0.0 then invalid_arg "Trace.throughput_series: window must be positive";
  let span = makespan t in
  if span <= 0.0 then [||]
  else begin
    let nwin = int_of_float (Float.ceil (span /. window)) in
    let counts = Array.make nwin 0 in
    List.iter
      (fun (_, time) ->
        let k = Stdlib.min (nwin - 1) (int_of_float (time /. window)) in
        counts.(k) <- counts.(k) + 1)
      t.completions;
    Array.mapi
      (fun k c -> ((Float.of_int k +. 0.5) *. window, Float.of_int c /. window))
      counts
  end

let services t = List.rev t.services

let service_times t ~stage =
  let times =
    List.filter_map
      (fun s -> if s.stage = stage then Some (s.finish -. s.start) else None)
      t.services
  in
  Array.of_list (List.rev times)

let services_on_node t ~node =
  List.length (List.filter (fun s -> s.node = node) t.services)

let transfers t = List.rev t.transfers
let adaptations t = List.rev t.adaptations

(* An item's sojourn starts at its open-arrival stamp when one was recorded
   (Sojourn events carry it) and otherwise at its first service start — the
   only entry instant a closed-stream trace knows. *)
let entered t item =
  match Hashtbl.find_opt t.arrivals item with
  | Some arrival -> Some arrival
  | None -> Hashtbl.find_opt t.first_start item

let sojourns t =
  let series =
    List.filter_map
      (fun (item, time) ->
        match entered t item with
        | Some start -> Some (item, time -. start)
        | None -> None)
      (List.rev t.completions)
  in
  Array.of_list series

let mean_sojourn t =
  let total, count =
    List.fold_left
      (fun (total, count) (item, time) ->
        match entered t item with
        | Some start -> (total +. (time -. start), count + 1)
        | None -> (total, count))
      (0.0, 0) t.completions
  in
  if count = 0 then nan else total /. Float.of_int count
