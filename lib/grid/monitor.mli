(** The resource-monitoring subsystem — this repository's stand-in for the
    Network Weather Service.

    Every [every] seconds each node's availability is sampled through a noisy,
    occasionally failing sensor, and the samples feed a per-node forecaster
    (the NWS adaptive ensemble by default). The adaptive engine consults
    {!node_forecast} when it re-evaluates the mapping, so adaptation decisions
    are made from the same kind of imperfect signal a live grid offers. *)

type t

type sensor_spec = {
  noise : float;  (** multiplicative Gaussian sensing noise (std dev) *)
  dropout : float;  (** probability a sample is lost *)
}

val default_sensor : sensor_spec
(** 2% noise, 1% dropout. *)

val perfect_sensor : sensor_spec

val create :
  ?sensor:sensor_spec ->
  ?suspect_after:int ->
  ?forecaster:(unit -> Aspipe_util.Forecast.t) ->
  rng:Aspipe_util.Rng.t ->
  every:float ->
  horizon:float ->
  Topology.t ->
  t
(** Starts sampling immediately and stops after [horizon]. The default
    forecaster factory is [Forecast.adaptive ~fallback:1.0].

    A down node does not answer its sensor: no sample arrives and a
    heartbeat is counted as missed. After [suspect_after] consecutive
    misses (default 2, must be ≥ 1) the node is {!suspected} — the
    monitor's failure-detection verdict, which stays advisory (the monitor
    never acts on it itself). *)

val every : t -> float

val node_forecast : t -> int -> float
(** Forecast availability of node [i], clamped to [\[0, 1\]]; 1.0 before any
    sample arrived. *)

val link_forecast : t -> src:int -> dst:int -> float
(** Forecast quality of the directed link; 1.0 on the diagonal and before
    any sample. *)

val user_link_forecast : t -> int -> float
(** Forecast quality of the user ↔ node [i] connection. *)

val last_observation : t -> int -> float option
(** Most recent raw (noisy) sample, if any. *)

val samples_taken : t -> int

val suspected : t -> int -> bool
(** Whether node [i] has missed [suspect_after] or more consecutive
    heartbeats. Cleared as soon as the node answers again. *)

val suspects : t -> int list
(** All currently suspected nodes, ascending. *)

val forecast_error : t -> int -> float
(** Running MAE of the node's forecaster ([nan] with < 2 samples). *)
