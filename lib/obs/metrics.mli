(** The metrics registry: counters, gauges and log-bucketed histograms.

    A registry is a flat, name-keyed collection of instruments. Lookups by
    name are idempotent — asking twice for the same counter returns the
    same cell (asking for the same name as a different kind raises), so
    meters can create instruments lazily on the hot path. {!snapshot}
    produces an immutable, name-sorted view the experiments, the bench
    harness and the [aspipe metrics] subcommand render or serialize. *)

type t

val create : unit -> t

module Counter : sig
  type cell

  val get : t -> string -> cell
  val incr : cell -> unit
  val add : cell -> int -> unit
  val value : cell -> int
end

module Gauge : sig
  type cell

  val get : t -> string -> cell
  val set : cell -> float -> unit
  val add : cell -> float -> unit
  val value : cell -> float
end

module Histogram : sig
  (** Power-of-two log-bucketed histogram: an observation [v > 0] lands in
      the bucket [\[2^(e-1), 2^e)] containing it; zero and negative
      observations share a dedicated underflow bucket. Exact count, sum,
      min and max are kept alongside, so means are exact and quantiles are
      bucket-resolution estimates (geometric bucket midpoint, clamped to
      the observed range). *)

  type cell

  val get : t -> string -> cell
  val observe : cell -> float -> unit
  val count : cell -> int
  val sum : cell -> float
  val mean : cell -> float
  (** [nan] when empty. *)

  val quantile : cell -> float -> float
  (** [quantile cell q] with [q] in [\[0, 1\]]; [nan] when empty. *)

  val buckets : cell -> (float * float * int) list
  (** Non-empty buckets as [(lo, hi, count)], ascending; the underflow
      bucket reports as [(0., 0., count)]. *)
end

type histogram_stats = {
  count : int;
  sum : float;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  p999 : float;
  buckets : (float * float * int) list;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram_stats) list;
}
(** All three sections sorted by instrument name. *)

val snapshot : t -> snapshot

val render : snapshot -> string
(** Human-readable tables (counters+gauges, then one histogram summary row
    per histogram, then per-histogram bucket bars). *)

val snapshot_to_json : snapshot -> Json.t
