(** The event bus: the single channel every instrumented component emits
    structured {!Event.t}s on.

    A bus belongs to a clock (the DES engine's virtual clock, or a
    wall-clock for direct execution); {!emit} stamps each payload with the
    clock reading and a monotonically increasing sequence number, then
    hands the event to every subscribed sink in subscription order,
    synchronously. Sinks must not emit back onto the bus.

    Hot call sites guard their emits with {!active} so that a run with no
    full-stream sink attached constructs no payloads at all. Rare control
    events (crash/recovery, adaptation decisions) are emitted unguarded so
    that {!Control}-interest sinks — internal machinery such as the
    simulator's fault handler — keep working on an otherwise silent bus. *)

type t

type sink = Event.t -> unit

type interest =
  | All  (** Wants the full event stream; keeps the guarded hot path on. *)
  | Control
      (** Only needs the sparse control events that are emitted
          unconditionally. A [Control] sink still receives every event that
          is actually emitted; it just does not, by itself, make {!active}
          true and so does not force the per-item hot emits. *)

type subscription

val create : ?clock:(unit -> float) -> unit -> t
(** A fresh bus. The default clock is constantly [0.0] until
    {!set_clock}. *)

val set_clock : t -> (unit -> float) -> unit
(** Rebind the time source (the DES engine does this once at creation). *)

val now : t -> float
(** Current clock reading. *)

val subscribe : ?interest:interest -> t -> sink -> subscription
(** Attach a sink ([interest] defaults to [All]); it sees every event
    emitted after this call. Amortised O(1). *)

val unsubscribe : t -> subscription -> unit
(** Detach; idempotent. Subscription order of the remaining sinks is
    preserved. *)

val active : t -> bool
(** [true] iff at least one [All]-interest sink is attached — O(1). Hot
    call sites check this before constructing an event payload:
    [if Bus.active bus then Bus.emit bus (...)]. *)

val emit : t -> Event.payload -> unit
(** Stamp and deliver to all sinks. The sequence number advances on every
    call, sinks or not; the payload is only stamped into an event (and thus
    allocated onto sinks) when at least one sink of any interest is
    attached. *)

val events_emitted : t -> int
(** Total events stamped so far (the next event's [seq]). *)
