(** The event bus: the single channel every instrumented component emits
    structured {!Event.t}s on.

    A bus belongs to a clock (the DES engine's virtual clock, or a
    wall-clock for direct execution); {!emit} stamps each payload with the
    clock reading and a monotonically increasing sequence number, then
    hands the event to every subscribed sink in subscription order,
    synchronously. Sinks must not emit back onto the bus.

    Emission with no sinks attached is a cheap no-op apart from the payload
    allocation, so instrumented hot paths need no conditional plumbing. *)

type t

type sink = Event.t -> unit

type subscription

val create : ?clock:(unit -> float) -> unit -> t
(** A fresh bus. The default clock is constantly [0.0] until
    {!set_clock}. *)

val set_clock : t -> (unit -> float) -> unit
(** Rebind the time source (the DES engine does this once at creation). *)

val now : t -> float
(** Current clock reading. *)

val subscribe : t -> sink -> subscription
(** Attach a sink; it sees every event emitted after this call. *)

val unsubscribe : t -> subscription -> unit
(** Detach; idempotent. *)

val active : t -> bool
(** [true] iff at least one sink is attached. *)

val emit : t -> Event.payload -> unit
(** Stamp and deliver to all sinks. *)

val events_emitted : t -> int
(** Total events stamped so far (the next event's [seq]). *)
