type sink = Event.t -> unit

type interest = All | Control

type subscription = int

(* Sinks live in growable parallel arrays kept in subscription order —
   appending is amortised O(1) (the old list representation rebuilt the
   whole list per subscribe, O(n²) across n subscriptions) and delivery is
   a cache-friendly array walk.

   [all_count] caches how many sinks want the full stream, so {!active} —
   the guard hot call sites consult before even building a payload — is a
   single integer compare rather than a list probe. *)
type t = {
  mutable clock : unit -> float;
  mutable ids : int array;
  mutable sinks : sink array;
  mutable alls : bool array;  (* interest = All, per slot *)
  mutable count : int;
  mutable all_count : int;
  mutable next_id : int;
  mutable seq : int;
}

let null_sink (_ : Event.t) = ()

let create ?(clock = fun () -> 0.0) () =
  {
    clock;
    ids = [||];
    sinks = [||];
    alls = [||];
    count = 0;
    all_count = 0;
    next_id = 0;
    seq = 0;
  }

let set_clock t clock = t.clock <- clock
let now t = t.clock ()

let grow t =
  let cap = Array.length t.ids in
  let ncap = if cap = 0 then 4 else 2 * cap in
  let ids = Array.make ncap 0 in
  Array.blit t.ids 0 ids 0 cap;
  let sinks = Array.make ncap null_sink in
  Array.blit t.sinks 0 sinks 0 cap;
  let alls = Array.make ncap false in
  Array.blit t.alls 0 alls 0 cap;
  t.ids <- ids;
  t.sinks <- sinks;
  t.alls <- alls

let subscribe ?(interest = All) t sink =
  let id = t.next_id in
  t.next_id <- id + 1;
  if t.count = Array.length t.ids then grow t;
  t.ids.(t.count) <- id;
  t.sinks.(t.count) <- sink;
  let all = interest = All in
  t.alls.(t.count) <- all;
  t.count <- t.count + 1;
  if all then t.all_count <- t.all_count + 1;
  id

let unsubscribe t id =
  let found = ref (-1) in
  for i = 0 to t.count - 1 do
    if !found < 0 && t.ids.(i) = id then found := i
  done;
  match !found with
  | -1 -> ()
  | i ->
      if t.alls.(i) then t.all_count <- t.all_count - 1;
      let last = t.count - 1 in
      for j = i to last - 1 do
        t.ids.(j) <- t.ids.(j + 1);
        t.sinks.(j) <- t.sinks.(j + 1);
        t.alls.(j) <- t.alls.(j + 1)
      done;
      (* Drop the stale closure so the bus does not retain it. *)
      t.sinks.(last) <- null_sink;
      t.count <- last

let active t = t.all_count > 0

let emit t payload =
  let seq = t.seq in
  t.seq <- seq + 1;
  if t.count > 0 then begin
    let event = { Event.time = t.clock (); seq; payload } in
    for i = 0 to t.count - 1 do
      (Array.unsafe_get t.sinks i) event
    done
  end

let events_emitted t = t.seq
