type sink = Event.t -> unit

type subscription = int

type t = {
  mutable clock : unit -> float;
  mutable sinks : (subscription * sink) list;  (* subscription order *)
  mutable next_id : int;
  mutable seq : int;
}

let create ?(clock = fun () -> 0.0) () = { clock; sinks = []; next_id = 0; seq = 0 }

let set_clock t clock = t.clock <- clock
let now t = t.clock ()

let subscribe t sink =
  let id = t.next_id in
  t.next_id <- id + 1;
  t.sinks <- t.sinks @ [ (id, sink) ];
  id

let unsubscribe t id = t.sinks <- List.filter (fun (i, _) -> i <> id) t.sinks

let active t = t.sinks <> []

let emit t payload =
  let seq = t.seq in
  t.seq <- seq + 1;
  match t.sinks with
  | [] -> ()
  | sinks ->
      let event = { Event.time = t.clock (); seq; payload } in
      List.iter (fun (_, sink) -> sink event) sinks

let events_emitted t = t.seq
