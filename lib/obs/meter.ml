type t = {
  bus : Bus.t;
  reg : Metrics.t;
  busy : (int, float ref) Hashtbl.t;  (* node -> accumulated service time *)
}

let node_busy t node =
  match Hashtbl.find_opt t.busy node with
  | Some cell -> cell
  | None ->
      let cell = ref 0.0 in
      Hashtbl.add t.busy node cell;
      cell

let on_event t (event : Event.t) =
  let counter name = Metrics.Counter.get t.reg name in
  let gauge name = Metrics.Gauge.get t.reg name in
  let histogram name = Metrics.Histogram.get t.reg name in
  Metrics.Counter.incr (counter "events.total");
  match event.payload with
  | Event.Service_start _ -> ()
  | Event.Service_finish { stage; node; start; _ } ->
      let duration = event.time -. start in
      Metrics.Histogram.observe (histogram (Printf.sprintf "stage.%d.service_time" stage)) duration;
      Metrics.Counter.incr (counter (Printf.sprintf "node.%d.services" node));
      let busy = node_busy t node in
      busy := !busy +. duration
  | Event.Transfer { start; bytes; _ } ->
      Metrics.Counter.incr (counter "transfers.total");
      Metrics.Gauge.add (gauge "transfers.bytes") bytes;
      Metrics.Histogram.observe (histogram "transfer.time") (event.time -. start)
  | Event.Completion _ -> Metrics.Counter.incr (counter "items.completed")
  | Event.Sojourn { arrival; _ } ->
      Metrics.Histogram.observe (histogram "serve.sojourn") (event.time -. arrival)
  | Event.Slo_window { completions; violations; attained; _ } ->
      Metrics.Counter.incr (counter "slo.windows");
      if not attained then Metrics.Counter.incr (counter "slo.windows_violated");
      Metrics.Counter.add (counter "slo.completions") completions;
      Metrics.Counter.add (counter "slo.violations") violations
  | Event.Queue_sample { stage; depth } ->
      Metrics.Gauge.set (gauge (Printf.sprintf "stage.%d.queue_depth.now" stage))
        (Float.of_int depth);
      Metrics.Histogram.observe
        (histogram (Printf.sprintf "stage.%d.queue_depth" stage))
        (Float.of_int depth)
  | Event.Calibration_sample _ -> Metrics.Counter.incr (counter "calibration.probes")
  | Event.Monitor_sample _ -> Metrics.Counter.incr (counter "monitor.samples")
  | Event.Forecast_update { predicted; observed; _ } ->
      Metrics.Histogram.observe (histogram "forecast.abs_error")
        (Float.abs (predicted -. observed))
  | Event.Adaptation_considered _ -> Metrics.Counter.incr (counter "adaptations.considered")
  | Event.Adaptation_committed { predicted_gain; migration_cost; _ } ->
      Metrics.Counter.incr (counter "adaptations.committed");
      Metrics.Gauge.add (gauge "adaptations.predicted_gain") predicted_gain;
      Metrics.Gauge.add (gauge "adaptations.migration_cost") migration_cost
  | Event.Adaptation_rejected _ -> Metrics.Counter.incr (counter "adaptations.rejected")
  | Event.Node_crashed _ -> Metrics.Counter.incr (counter "faults.node_crashes")
  | Event.Node_recovered _ -> Metrics.Counter.incr (counter "faults.node_recoveries")
  | Event.Item_lost _ -> Metrics.Counter.incr (counter "items.lost")
  | Event.Item_redispatched _ -> Metrics.Counter.incr (counter "items.redispatched")
  | Event.Failover_committed { items_redispatched; _ } ->
      Metrics.Counter.incr (counter "failovers.committed");
      Metrics.Gauge.add (gauge "failovers.items_redispatched")
        (Float.of_int items_redispatched)

let attach ?registry bus =
  let reg = match registry with Some r -> r | None -> Metrics.create () in
  let t = { bus; reg; busy = Hashtbl.create 8 } in
  ignore (Bus.subscribe bus (on_event t));
  t

let registry t = t.reg

let snapshot t =
  let now = Bus.now t.bus in
  if now > 0.0 then begin
    (* Register utilization gauges in node order, not hash order: gauge
       creation order is registry insertion order, and nothing downstream
       may depend on where int keys land in a hash table. *)
    let nodes = Hashtbl.fold (fun node busy acc -> (node, !busy) :: acc) t.busy [] in
    List.iter
      (fun (node, busy) ->
        Metrics.Gauge.set
          (Metrics.Gauge.get t.reg (Printf.sprintf "node.%d.utilization" node))
          (busy /. now))
      (List.sort (fun (a, _) (b, _) -> Int.compare a b) nodes)
  end;
  Metrics.snapshot t.reg
