let json_of_mapping m = Json.List (Array.to_list (Array.map (fun p -> Json.Int p) m))

let subject_fields = function
  | Event.Node i -> [ ("subject", Json.String "node"); ("node", Json.Int i) ]
  | Event.Link { src; dst } ->
      [ ("subject", Json.String "link"); ("src", Json.Int src); ("dst", Json.Int dst) ]
  | Event.User_link i -> [ ("subject", Json.String "user_link"); ("node", Json.Int i) ]

let payload_fields = function
  | Event.Service_start { item; stage; node } ->
      [ ("item", Json.Int item); ("stage", Json.Int stage); ("node", Json.Int node) ]
  | Event.Service_finish { item; stage; node; start } ->
      [
        ("item", Json.Int item);
        ("stage", Json.Int stage);
        ("node", Json.Int node);
        ("start", Json.Float start);
      ]
  | Event.Transfer { item; from_stage; src; dst; start; bytes } ->
      [
        ("item", Json.Int item);
        ("from_stage", Json.Int from_stage);
        ("src", Json.Int src);
        ("dst", Json.Int dst);
        ("start", Json.Float start);
        ("bytes", Json.Float bytes);
      ]
  | Event.Completion { item } -> [ ("item", Json.Int item) ]
  | Event.Sojourn { item; arrival } ->
      [ ("item", Json.Int item); ("arrival", Json.Float arrival) ]
  | Event.Slo_window { window; until; completions; violations; attained } ->
      [
        ("window", Json.Int window);
        ("until", Json.Float until);
        ("completions", Json.Int completions);
        ("violations", Json.Int violations);
        ("attained", Json.Bool attained);
      ]
  | Event.Queue_sample { stage; depth } ->
      [ ("stage", Json.Int stage); ("depth", Json.Int depth) ]
  | Event.Calibration_sample { stage; probe; measured } ->
      [ ("stage", Json.Int stage); ("probe", Json.Int probe); ("measured", Json.Float measured) ]
  | Event.Monitor_sample { subject; observed } ->
      subject_fields subject @ [ ("observed", Json.Float observed) ]
  | Event.Forecast_update { subject; predicted; observed } ->
      subject_fields subject
      @ [ ("predicted", Json.Float predicted); ("observed", Json.Float observed) ]
  | Event.Adaptation_considered { mapping; observed_throughput; adopted_throughput } ->
      [
        ("mapping", json_of_mapping mapping);
        ("observed_throughput", Json.Float observed_throughput);
        ("adopted_throughput", Json.Float adopted_throughput);
      ]
  | Event.Adaptation_committed { mapping_before; mapping_after; predicted_gain; migration_cost }
    ->
      [
        ("mapping_before", json_of_mapping mapping_before);
        ("mapping_after", json_of_mapping mapping_after);
        ("predicted_gain", Json.Float predicted_gain);
        ("migration_cost", Json.Float migration_cost);
      ]
  | Event.Adaptation_rejected { mapping; observed_throughput } ->
      [
        ("mapping", json_of_mapping mapping);
        ("observed_throughput", Json.Float observed_throughput);
      ]
  | Event.Node_crashed { node } -> [ ("node", Json.Int node) ]
  | Event.Node_recovered { node } -> [ ("node", Json.Int node) ]
  | Event.Item_lost { item; stage; node } ->
      [ ("item", Json.Int item); ("stage", Json.Int stage); ("node", Json.Int node) ]
  | Event.Item_redispatched { item; stage; node } ->
      [ ("item", Json.Int item); ("stage", Json.Int stage); ("node", Json.Int node) ]
  | Event.Failover_committed { mapping_before; mapping_after; items_redispatched } ->
      [
        ("mapping_before", json_of_mapping mapping_before);
        ("mapping_after", json_of_mapping mapping_after);
        ("items_redispatched", Json.Int items_redispatched);
      ]

let json_of_event (event : Event.t) =
  Json.Obj
    (("ts", Json.Float event.time)
    :: ("seq", Json.Int event.seq)
    :: ("type", Json.String (Event.kind event.payload))
    :: payload_fields event.payload)

let line event = Json.to_string (json_of_event event)

let sink_to_buffer buffer event =
  Json.to_buffer buffer (json_of_event event);
  Buffer.add_char buffer '\n'

let sink_to_channel oc event =
  output_string oc (line event);
  output_char oc '\n'
