(** The JSONL exporter: one compact JSON object per event, one per line —
    the machine-readable twin of the bus, suitable for [jq], regression
    diffing and replay. Runs with the same seed produce byte-identical
    logs (virtual time, no wall-clock anywhere). *)

val json_of_event : Event.t -> Json.t
(** Fields: [ts] (virtual seconds), [seq], [type] ({!Event.kind}), then
    the payload's fields flattened. *)

val line : Event.t -> string
(** [to_string (json_of_event e)] — no trailing newline. *)

val sink_to_buffer : Buffer.t -> Bus.sink
(** A sink appending one line (with newline) per event. *)

val sink_to_channel : out_channel -> Bus.sink
