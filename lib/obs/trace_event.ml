type t = { mutable events : Event.t list (* newest first *) }

let create () = { events = [] }

let sink t event = t.events <- event :: t.events

let attach t bus = ignore (Bus.subscribe bus (sink t))

let events_collected t = List.length t.events

let grid_pid = 1
let network_pid = 2

(* Virtual seconds -> trace microseconds. *)
let us s = Json.Float (s *. 1e6)

let base ~name ~cat ~ph ~ts ~pid ~tid rest =
  Json.Obj
    (("name", Json.String name)
    :: ("cat", Json.String cat)
    :: ("ph", Json.String ph)
    :: ("ts", us ts)
    :: ("pid", Json.Int pid)
    :: ("tid", Json.Int tid)
    :: rest)

let metadata ~name ~pid ?tid arg =
  Json.Obj
    (("name", Json.String name)
    :: ("ph", Json.String "M")
    :: ("pid", Json.Int pid)
    :: (match tid with Some tid -> [ ("tid", Json.Int tid) ] | None -> [])
    @ [ ("args", Json.Obj [ ("name", Json.String arg) ]) ])

let mapping_json m = Json.List (Array.to_list (Array.map (fun p -> Json.Int p) m))

let to_json t =
  let events = List.rev t.events in
  let nodes = Hashtbl.create 8 in
  let note_node i = if not (Hashtbl.mem nodes i) then Hashtbl.add nodes i () in
  (* Per-item service slices (start, node), oldest first, for the flows. *)
  let slices : (int, (float * int) list ref) Hashtbl.t = Hashtbl.create 256 in
  let note_slice item start node =
    match Hashtbl.find_opt slices item with
    | Some cell -> cell := (start, node) :: !cell
    | None -> Hashtbl.add slices item (ref [ (start, node) ])
  in
  let completed = ref 0 in
  let main =
    List.filter_map
      (fun (event : Event.t) ->
        match event.payload with
        | Event.Service_finish { item; stage; node; start } ->
            note_node node;
            note_slice item start node;
            Some
              (base
                 ~name:(Printf.sprintf "stage %d" stage)
                 ~cat:"service" ~ph:"X" ~ts:start ~pid:grid_pid ~tid:node
                 [
                   ("dur", us (event.time -. start));
                   ( "args",
                     Json.Obj
                       [ ("item", Json.Int item); ("stage", Json.Int stage); ("node", Json.Int node) ]
                   );
                 ])
        | Event.Transfer { item; from_stage; src; dst; start; bytes } ->
            note_node src;
            note_node dst;
            Some
              (base
                 ~name:(Printf.sprintf "item %d: %d->%d" item src dst)
                 ~cat:"transfer" ~ph:"X" ~ts:start ~pid:network_pid ~tid:src
                 [
                   ("dur", us (event.time -. start));
                   ( "args",
                     Json.Obj
                       [
                         ("item", Json.Int item);
                         ("from_stage", Json.Int from_stage);
                         ("dst", Json.Int dst);
                         ("bytes", Json.Float bytes);
                       ] );
                 ])
        | Event.Completion _ ->
            incr completed;
            Some
              (base ~name:"completed" ~cat:"progress" ~ph:"C" ~ts:event.time ~pid:grid_pid
                 ~tid:0
                 [ ("args", Json.Obj [ ("items", Json.Int !completed) ]) ])
        | Event.Adaptation_committed
            { mapping_before; mapping_after; predicted_gain; migration_cost } ->
            Some
              (base ~name:"adaptation" ~cat:"adaptation" ~ph:"i" ~ts:event.time ~pid:grid_pid
                 ~tid:0
                 [
                   ("s", Json.String "g");
                   ( "args",
                     Json.Obj
                       [
                         ("mapping_before", mapping_json mapping_before);
                         ("mapping_after", mapping_json mapping_after);
                         ("predicted_gain", Json.Float predicted_gain);
                         ("migration_cost", Json.Float migration_cost);
                       ] );
                 ])
        | Event.Node_crashed { node } ->
            note_node node;
            Some
              (base ~name:"node crashed" ~cat:"fault" ~ph:"i" ~ts:event.time ~pid:grid_pid
                 ~tid:node
                 [ ("s", Json.String "g"); ("args", Json.Obj [ ("node", Json.Int node) ]) ])
        | Event.Node_recovered { node } ->
            note_node node;
            Some
              (base ~name:"node recovered" ~cat:"fault" ~ph:"i" ~ts:event.time ~pid:grid_pid
                 ~tid:node
                 [ ("s", Json.String "g"); ("args", Json.Obj [ ("node", Json.Int node) ]) ])
        | Event.Failover_committed { mapping_before; mapping_after; items_redispatched } ->
            Some
              (base ~name:"failover" ~cat:"fault" ~ph:"i" ~ts:event.time ~pid:grid_pid ~tid:0
                 [
                   ("s", Json.String "g");
                   ( "args",
                     Json.Obj
                       [
                         ("mapping_before", mapping_json mapping_before);
                         ("mapping_after", mapping_json mapping_after);
                         ("items_redispatched", Json.Int items_redispatched);
                       ] );
                 ])
        | Event.Monitor_sample { subject = Event.Node i; observed } ->
            note_node i;
            Some
              (base
                 ~name:(Printf.sprintf "availability node %d" i)
                 ~cat:"monitor" ~ph:"C" ~ts:event.time ~pid:grid_pid ~tid:0
                 [ ("args", Json.Obj [ ("availability", Json.Float observed) ]) ])
        | Event.Slo_window { window; until = _; completions; violations; attained } ->
            Some
              (base
                 ~name:(if attained then "SLO window attained" else "SLO window violated")
                 ~cat:"slo" ~ph:"i" ~ts:event.time ~pid:grid_pid ~tid:0
                 [
                   ("s", Json.String "g");
                   ( "args",
                     Json.Obj
                       [
                         ("window", Json.Int window);
                         ("completions", Json.Int completions);
                         ("violations", Json.Int violations);
                       ] );
                 ])
        | Event.Service_start _ | Event.Sojourn _ | Event.Queue_sample _
        | Event.Calibration_sample _ | Event.Monitor_sample _ | Event.Forecast_update _
        | Event.Adaptation_considered _ | Event.Adaptation_rejected _ | Event.Item_lost _
        | Event.Item_redispatched _ ->
            None)
      events
  in
  (* Flow chains: arrows following each item across node tracks. *)
  let flows =
    Hashtbl.fold
      (fun item cell acc ->
        let chain = List.rev !cell in
        if List.length chain < 2 then acc
        else begin
          let last = List.length chain - 1 in
          let name = Printf.sprintf "item %d" item in
          List.concat
            (List.mapi
               (fun k (start, node) ->
                 let ph = if k = 0 then "s" else if k = last then "f" else "t" in
                 let extra = if ph = "f" then [ ("bp", Json.String "e") ] else [] in
                 [
                   base ~name ~cat:"item" ~ph ~ts:start ~pid:grid_pid ~tid:node
                     (("id", Json.Int item) :: extra);
                 ])
               chain)
          @ acc
        end)
      slices []
  in
  let node_ids = List.sort compare (Hashtbl.fold (fun i () acc -> i :: acc) nodes []) in
  let meta =
    metadata ~name:"process_name" ~pid:grid_pid "grid"
    :: metadata ~name:"process_name" ~pid:network_pid "network"
    :: List.concat_map
         (fun i ->
           [
             metadata ~name:"thread_name" ~pid:grid_pid ~tid:i (Printf.sprintf "node %d" i);
             metadata ~name:"thread_name" ~pid:network_pid ~tid:i
               (Printf.sprintf "from node %d" i);
           ])
         node_ids
  in
  Json.Obj
    [
      ("traceEvents", Json.List (meta @ main @ flows));
      ("displayTimeUnit", Json.String "ms");
      ("otherData", Json.Obj [ ("generator", Json.String "aspipe") ]);
    ]

let to_string t = Json.to_string (to_json t)

let write t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string t);
      output_char oc '\n')
