(** The standard pipeline meter: a bus sink that keeps a {!Metrics}
    registry current as the run unfolds.

    Maintained instruments (names are stable API):
    - [events.total], [items.completed], [transfers.total],
      [monitor.samples], [calibration.probes] — counters;
    - [adaptations.considered] / [.committed] / [.rejected] — counters,
      plus [adaptations.predicted_gain] / [.migration_cost] — gauges
      accumulating totals;
    - [stage.N.service_time], [transfer.time], [forecast.abs_error],
      [stage.N.queue_depth] — histograms;
    - [stage.N.queue_depth.now], [transfers.bytes] — gauges;
    - [node.N.services] — counters, and [node.N.utilization] — gauges
      (busy time over elapsed time, refreshed at {!snapshot}). *)

type t

val attach : ?registry:Metrics.t -> Bus.t -> t
(** Subscribe a meter to [bus], recording into [registry] (fresh by
    default). *)

val registry : t -> Metrics.t

val snapshot : t -> Metrics.snapshot
(** Refresh the derived gauges (per-node utilization against the bus
    clock), then snapshot the registry. *)
