(** The structured-event taxonomy of the telemetry layer.

    Every observable fact a run produces — a stage servicing an item, a
    payload crossing a link, a sensor reading, an adaptation decision — is
    one immutable {!t}: a payload stamped with the virtual time it happened
    at and a per-bus sequence number that totally orders simultaneous
    events. Sinks ({!Aspipe_grid.Trace}, the JSONL writer, the Perfetto
    exporter, the metrics meter) are pure consumers of this stream. *)

type subject =
  | Node of int  (** a processor *)
  | Link of { src : int; dst : int }  (** a directed inter-node link *)
  | User_link of int  (** the user ↔ node connection *)

type payload =
  | Service_start of { item : int; stage : int; node : int }
  | Service_finish of { item : int; stage : int; node : int; start : float }
      (** [start] repeats the matching {!Service_start} time so each finish
          event is self-contained; the finish time is the event stamp. *)
  | Transfer of {
      item : int;
      from_stage : int;
      src : int;
      dst : int;
      start : float;
      bytes : float;
    }  (** delivery of an item's payload; the event stamp is the arrival. *)
  | Completion of { item : int }  (** item delivered back to the user *)
  | Sojourn of { item : int; arrival : float }
      (** the item's full user-visible residence: [arrival] is the instant
          the item entered the system (the serving layer's open-arrival
          stamp), the event stamp is its completion, so the sojourn is
          [time -. arrival]. Emitted alongside {!Completion} when the
          simulator holds an arrival stamp for the item. *)
  | Slo_window of {
      window : int;
      until : float;
      completions : int;
      violations : int;
      attained : bool;
    }
      (** one closed SLO accounting window ([window]-th, ending at [until]):
          [violations] of the [completions] in it exceeded the latency
          threshold, and [attained] says whether the window as a whole met
          its target quantile. Sparse control traffic, one event per window. *)
  | Queue_sample of { stage : int; depth : int }
      (** a stage's pending-queue depth just changed to [depth] *)
  | Calibration_sample of { stage : int; probe : int; measured : float }
  | Monitor_sample of { subject : subject; observed : float }
      (** one (noisy) sensor reading that actually arrived *)
  | Forecast_update of { subject : subject; predicted : float; observed : float }
      (** forecaster state advanced: what it predicted before seeing
          [observed] *)
  | Adaptation_considered of {
      mapping : int array;
      observed_throughput : float;
      adopted_throughput : float;
    }  (** the policy was consulted with this decision context *)
  | Adaptation_committed of {
      mapping_before : int array;
      mapping_after : int array;
      predicted_gain : float;
      migration_cost : float;
    }
  | Adaptation_rejected of { mapping : int array; observed_throughput : float }
      (** the policy answered [Keep] *)
  | Node_crashed of { node : int }
      (** the node went down: distinct from availability 0 — its in-service
          and queued items are gone *)
  | Node_recovered of { node : int }  (** the node rejoined the grid *)
  | Item_lost of { item : int; stage : int; node : int }
      (** the item was in service or queued at [stage] when [node] crashed *)
  | Item_redispatched of { item : int; stage : int; node : int }
      (** a lost item was re-entered at [stage] (now on [node]) from the
          per-stage checkpoint *)
  | Failover_committed of {
      mapping_before : int array;
      mapping_after : int array;
      items_redispatched : int;
    }  (** orphaned stages were re-mapped to survivors *)

type t = { time : float; seq : int; payload : payload }

val kind : payload -> string
(** Stable snake-case tag of the constructor ([service_finish], ...); this
    is the [type] field of the JSONL encoding, so it is part of the
    on-disk format. *)

val pp : Format.formatter -> t -> unit
