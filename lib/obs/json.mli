(** A minimal, dependency-free JSON representation.

    Serialization is deterministic: object keys keep their construction
    order, floats render with ["%.12g"], and non-finite floats become
    [null] (JSON has no NaN/Inf). The parser exists so exporters can be
    validated round-trip in tests and smoke checks without external
    tooling; it accepts standard JSON, nothing more. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string
(** Compact (single-line) rendering. *)

val of_string : string -> (t, string) result
(** Parse one JSON document (surrounding whitespace allowed). Numbers
    without [.], [e] or [E] that fit in an [int] parse as [Int]. *)

val member : string -> t -> t option
(** [member key json] — field lookup on [Obj], [None] otherwise. *)
