(** The Chrome trace-event / Perfetto exporter.

    A collector subscribes to a bus, buffers the run's events, and renders
    them as a trace-event JSON document ([ui.perfetto.dev] or
    [chrome://tracing] open it directly):

    - each grid node is a thread track under the "grid" process; every
      service is a complete ("X") slice on its node's track;
    - an item's path across stages/nodes is a flow ("s"/"t"/"f" chain
      keyed by item id), so Perfetto draws arrows following the item;
    - transfers are slices on per-source-node tracks of the "network"
      process;
    - committed adaptations are global instant markers carrying the
      mapping change, predicted gain and migration cost in [args];
    - completions and node-availability samples render as counter tracks.

    Virtual seconds are scaled to trace microseconds. *)

type t

val create : unit -> t

val sink : t -> Bus.sink
(** The collecting sink (subscribe it to a bus, or feed events directly). *)

val attach : t -> Bus.t -> unit
(** [subscribe bus (sink t)], discarding the subscription. *)

val events_collected : t -> int

val to_json : t -> Json.t
(** The [{"traceEvents": [...], ...}] document. *)

val to_string : t -> string

val write : t -> path:string -> unit
