type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let add_escaped buffer s =
  Buffer.add_char buffer '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.add_char buffer '"'

let rec to_buffer buffer = function
  | Null -> Buffer.add_string buffer "null"
  | Bool b -> Buffer.add_string buffer (if b then "true" else "false")
  | Int i -> Buffer.add_string buffer (string_of_int i)
  | Float f ->
      if not (Float.is_finite f) then Buffer.add_string buffer "null"
      else if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buffer (Printf.sprintf "%.0f" f)
      else Buffer.add_string buffer (Printf.sprintf "%.12g" f)
  | String s -> add_escaped buffer s
  | List items ->
      Buffer.add_char buffer '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buffer ',';
          to_buffer buffer item)
        items;
      Buffer.add_char buffer ']'
  | Obj fields ->
      Buffer.add_char buffer '{';
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_char buffer ',';
          add_escaped buffer key;
          Buffer.add_char buffer ':';
          to_buffer buffer value)
        fields;
      Buffer.add_char buffer '}'

let to_string json =
  let buffer = Buffer.create 256 in
  to_buffer buffer json;
  Buffer.contents buffer

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let len = String.length word in
    if !pos + len <= n && String.sub s !pos len = word then begin
      pos := !pos + len;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buffer = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buffer
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' | '\\' | '/' ->
              Buffer.add_char buffer e;
              loop ()
          | 'n' -> Buffer.add_char buffer '\n'; loop ()
          | 't' -> Buffer.add_char buffer '\t'; loop ()
          | 'r' -> Buffer.add_char buffer '\r'; loop ()
          | 'b' -> Buffer.add_char buffer '\b'; loop ()
          | 'f' -> Buffer.add_char buffer '\012'; loop ()
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let code = int_of_string ("0x" ^ String.sub s !pos 4) in
              pos := !pos + 4;
              (* Sufficient for the ASCII control characters we emit. *)
              if code < 0x80 then Buffer.add_char buffer (Char.chr code)
              else Buffer.add_string buffer (Printf.sprintf "\\u%04x" code);
              loop ()
          | _ -> fail "bad escape")
      | c ->
          Buffer.add_char buffer c;
          loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text then
      match float_of_string_opt text with Some f -> Float f | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with Some f -> Float f | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((key, value) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, value) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (value :: acc)
            | Some ']' ->
                advance ();
                List.rev (value :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let value = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    value
  with
  | value -> Ok value
  | exception Parse_error msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Int _ | Float _ | String _ | List _ -> None
