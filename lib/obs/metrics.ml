module Render = Aspipe_util.Render

type counter_cell = { mutable count : int }
type gauge_cell = { mutable gauge : float }

type histogram_cell = {
  mutable n : int;
  mutable total : float;
  mutable lo : float;
  mutable hi : float;
  mutable underflow : int;  (* observations <= 0 *)
  exponents : (int, int ref) Hashtbl.t;  (* frexp exponent -> count *)
}

type instrument =
  | Counter of counter_cell
  | Gauge of gauge_cell
  | Histogram of histogram_cell

type t = { instruments : (string, instrument) Hashtbl.t }

let create () = { instruments = Hashtbl.create 64 }

let get_instrument t name make =
  match Hashtbl.find_opt t.instruments name with
  | Some existing -> existing
  | None ->
      let fresh = make () in
      Hashtbl.add t.instruments name fresh;
      fresh

module Counter = struct
  type cell = counter_cell

  let get t name =
    match get_instrument t name (fun () -> Counter { count = 0 }) with
    | Counter c -> c
    | Gauge _ | Histogram _ ->
        invalid_arg (Printf.sprintf "Metrics.Counter.get: %S is not a counter" name)

  let add c k = c.count <- c.count + k
  let incr c = add c 1
  let value c = c.count
end

module Gauge = struct
  type cell = gauge_cell

  let get t name =
    match get_instrument t name (fun () -> Gauge { gauge = 0.0 }) with
    | Gauge g -> g
    | Counter _ | Histogram _ ->
        invalid_arg (Printf.sprintf "Metrics.Gauge.get: %S is not a gauge" name)

  let set g v = g.gauge <- v
  let add g v = g.gauge <- g.gauge +. v
  let value g = g.gauge
end

module Histogram = struct
  type cell = histogram_cell

  let get t name =
    let make () =
      Histogram
        {
          n = 0;
          total = 0.0;
          lo = infinity;
          hi = neg_infinity;
          underflow = 0;
          exponents = Hashtbl.create 16;
        }
    in
    match get_instrument t name make with
    | Histogram h -> h
    | Counter _ | Gauge _ ->
        invalid_arg (Printf.sprintf "Metrics.Histogram.get: %S is not a histogram" name)

  let observe h v =
    if Float.is_nan v then ()
    else begin
      h.n <- h.n + 1;
      h.total <- h.total +. v;
      if v < h.lo then h.lo <- v;
      if v > h.hi then h.hi <- v;
      if v <= 0.0 then h.underflow <- h.underflow + 1
      else begin
        let _, e = Float.frexp v in
        match Hashtbl.find_opt h.exponents e with
        | Some cell -> incr cell
        | None -> Hashtbl.add h.exponents e (ref 1)
      end
    end

  let count h = h.n
  let sum h = h.total
  let mean h = if h.n = 0 then nan else h.total /. Float.of_int h.n

  let sorted_buckets h =
    let positive =
      Hashtbl.fold (fun e cell acc -> (e, !cell) :: acc) h.exponents []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
      |> List.map (fun (e, c) -> (Float.ldexp 1.0 (e - 1), Float.ldexp 1.0 e, c))
    in
    if h.underflow > 0 then (0.0, 0.0, h.underflow) :: positive else positive

  let buckets = sorted_buckets

  let quantile h q =
    if q < 0.0 || q > 1.0 then invalid_arg "Metrics.Histogram.quantile";
    if h.n = 0 then nan
    else begin
      let rank = q *. Float.of_int h.n in
      let rec walk cumulative = function
        | [] -> h.hi
        | (lo, hi, c) :: rest ->
            let cumulative = cumulative +. Float.of_int c in
            if cumulative >= rank then
              if lo <= 0.0 then 0.0 else Float.min h.hi (Float.max h.lo (sqrt (lo *. hi)))
            else walk cumulative rest
      in
      walk 0.0 (sorted_buckets h)
    end
end

type histogram_stats = {
  count : int;
  sum : float;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  p999 : float;
  buckets : (float * float * int) list;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram_stats) list;
}

let snapshot t =
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  Hashtbl.iter
    (fun name instrument ->
      match instrument with
      | Counter c -> counters := (name, c.count) :: !counters
      | Gauge g -> gauges := (name, g.gauge) :: !gauges
      | Histogram h ->
          let stats =
            {
              count = h.n;
              sum = h.total;
              min = (if h.n = 0 then nan else h.lo);
              max = (if h.n = 0 then nan else h.hi);
              mean = Histogram.mean h;
              p50 = Histogram.quantile h 0.5;
              p90 = Histogram.quantile h 0.9;
              p99 = Histogram.quantile h 0.99;
              p999 = Histogram.quantile h 0.999;
              buckets = Histogram.sorted_buckets h;
            }
          in
          histograms := (name, stats) :: !histograms)
    t.instruments;
  let by_name (a, _) (b, _) = String.compare a b in
  {
    counters = List.sort by_name !counters;
    gauges = List.sort by_name !gauges;
    histograms = List.sort by_name !histograms;
  }

let render s =
  let buffer = Buffer.create 1024 in
  if s.counters <> [] || s.gauges <> [] then begin
    let table = Render.Table.create ~title:"counters & gauges" ~columns:[ "metric"; "value" ] in
    List.iter
      (fun (name, v) -> Render.Table.add_row table [ name; string_of_int v ])
      s.counters;
    List.iter
      (fun (name, v) -> Render.Table.add_row table [ name; Printf.sprintf "%.4g" v ])
      s.gauges;
    Buffer.add_string buffer (Render.Table.to_string table)
  end;
  if s.histograms <> [] then begin
    let table =
      Render.Table.create ~title:"histograms"
        ~columns:[ "metric"; "count"; "mean"; "p50"; "p90"; "p99"; "p999"; "max" ]
    in
    List.iter
      (fun (name, h) ->
        Render.Table.add_float_row table ~precision:4
          (name, [ Float.of_int h.count; h.mean; h.p50; h.p90; h.p99; h.p999; h.max ]))
      s.histograms;
    Buffer.add_string buffer (Render.Table.to_string table);
    List.iter
      (fun (name, h) ->
        if h.buckets <> [] then begin
          Buffer.add_string buffer (Printf.sprintf "-- %s buckets --\n" name);
          let widest = List.fold_left (fun acc (_, _, c) -> max acc c) 1 h.buckets in
          List.iter
            (fun (lo, hi, c) ->
              let bar = String.make (max 1 (c * 40 / widest)) '#' in
              if hi <= 0.0 then Buffer.add_string buffer (Printf.sprintf "%19s %6d %s\n" "<= 0" c bar)
              else
                Buffer.add_string buffer
                  (Printf.sprintf "[%8.3g, %8.3g) %6d %s\n" lo hi c bar))
            h.buckets
        end)
      s.histograms
  end;
  if Buffer.length buffer = 0 then "(no metrics recorded)\n" else Buffer.contents buffer

let snapshot_to_json s =
  let histogram_json (h : histogram_stats) =
    Json.Obj
      [
        ("count", Json.Int h.count);
        ("sum", Json.Float h.sum);
        ("min", Json.Float h.min);
        ("max", Json.Float h.max);
        ("mean", Json.Float h.mean);
        ("p50", Json.Float h.p50);
        ("p90", Json.Float h.p90);
        ("p99", Json.Float h.p99);
        ("p999", Json.Float h.p999);
        ( "buckets",
          Json.List
            (List.map
               (fun (lo, hi, c) ->
                 Json.Obj
                   [ ("lo", Json.Float lo); ("hi", Json.Float hi); ("count", Json.Int c) ])
               h.buckets) );
      ]
  in
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.counters));
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) s.gauges));
      ("histograms", Json.Obj (List.map (fun (k, h) -> (k, histogram_json h)) s.histograms));
    ]
