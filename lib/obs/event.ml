type subject =
  | Node of int
  | Link of { src : int; dst : int }
  | User_link of int

type payload =
  | Service_start of { item : int; stage : int; node : int }
  | Service_finish of { item : int; stage : int; node : int; start : float }
  | Transfer of {
      item : int;
      from_stage : int;
      src : int;
      dst : int;
      start : float;
      bytes : float;
    }
  | Completion of { item : int }
  | Sojourn of { item : int; arrival : float }
  | Slo_window of {
      window : int;
      until : float;
      completions : int;
      violations : int;
      attained : bool;
    }
  | Queue_sample of { stage : int; depth : int }
  | Calibration_sample of { stage : int; probe : int; measured : float }
  | Monitor_sample of { subject : subject; observed : float }
  | Forecast_update of { subject : subject; predicted : float; observed : float }
  | Adaptation_considered of {
      mapping : int array;
      observed_throughput : float;
      adopted_throughput : float;
    }
  | Adaptation_committed of {
      mapping_before : int array;
      mapping_after : int array;
      predicted_gain : float;
      migration_cost : float;
    }
  | Adaptation_rejected of { mapping : int array; observed_throughput : float }
  | Node_crashed of { node : int }
  | Node_recovered of { node : int }
  | Item_lost of { item : int; stage : int; node : int }
  | Item_redispatched of { item : int; stage : int; node : int }
  | Failover_committed of {
      mapping_before : int array;
      mapping_after : int array;
      items_redispatched : int;
    }

type t = { time : float; seq : int; payload : payload }

let kind = function
  | Service_start _ -> "service_start"
  | Service_finish _ -> "service_finish"
  | Transfer _ -> "transfer"
  | Completion _ -> "completion"
  | Sojourn _ -> "sojourn"
  | Slo_window _ -> "slo_window"
  | Queue_sample _ -> "queue_sample"
  | Calibration_sample _ -> "calibration_sample"
  | Monitor_sample _ -> "monitor_sample"
  | Forecast_update _ -> "forecast_update"
  | Adaptation_considered _ -> "adaptation_considered"
  | Adaptation_committed _ -> "adaptation_committed"
  | Adaptation_rejected _ -> "adaptation_rejected"
  | Node_crashed _ -> "node_crashed"
  | Node_recovered _ -> "node_recovered"
  | Item_lost _ -> "item_lost"
  | Item_redispatched _ -> "item_redispatched"
  | Failover_committed _ -> "failover_committed"

let pp_subject ppf = function
  | Node i -> Format.fprintf ppf "node %d" i
  | Link { src; dst } -> Format.fprintf ppf "link %d->%d" src dst
  | User_link i -> Format.fprintf ppf "user-link %d" i

let pp_mapping ppf m =
  Format.pp_print_char ppf '[';
  Array.iteri (fun i p -> Format.fprintf ppf "%s%d" (if i = 0 then "" else " ") p) m;
  Format.pp_print_char ppf ']'

let pp ppf t =
  Format.fprintf ppf "@[<h>%.6f #%d %s" t.time t.seq (kind t.payload);
  (match t.payload with
  | Service_start { item; stage; node } ->
      Format.fprintf ppf " item %d stage %d node %d" item stage node
  | Service_finish { item; stage; node; start } ->
      Format.fprintf ppf " item %d stage %d node %d start %.6f" item stage node start
  | Transfer { item; from_stage; src; dst; start; bytes } ->
      Format.fprintf ppf " item %d stage %d %d->%d start %.6f bytes %g" item from_stage src dst
        start bytes
  | Completion { item } -> Format.fprintf ppf " item %d" item
  | Sojourn { item; arrival } -> Format.fprintf ppf " item %d arrival %.6f" item arrival
  | Slo_window { window; until; completions; violations; attained } ->
      Format.fprintf ppf " window %d until %.6f completions %d violations %d %s" window until
        completions violations
        (if attained then "attained" else "violated")
  | Queue_sample { stage; depth } -> Format.fprintf ppf " stage %d depth %d" stage depth
  | Calibration_sample { stage; probe; measured } ->
      Format.fprintf ppf " stage %d probe %d measured %.6g" stage probe measured
  | Monitor_sample { subject; observed } ->
      Format.fprintf ppf " %a observed %.4f" pp_subject subject observed
  | Forecast_update { subject; predicted; observed } ->
      Format.fprintf ppf " %a predicted %.4f observed %.4f" pp_subject subject predicted
        observed
  | Adaptation_considered { mapping; observed_throughput; adopted_throughput } ->
      Format.fprintf ppf " mapping %a observed %.4f adopted %.4f" pp_mapping mapping
        observed_throughput adopted_throughput
  | Adaptation_committed { mapping_before; mapping_after; predicted_gain; migration_cost } ->
      Format.fprintf ppf " %a -> %a gain %.4f cost %.4f" pp_mapping mapping_before pp_mapping
        mapping_after predicted_gain migration_cost
  | Adaptation_rejected { mapping; observed_throughput } ->
      Format.fprintf ppf " mapping %a observed %.4f" pp_mapping mapping observed_throughput
  | Node_crashed { node } -> Format.fprintf ppf " node %d" node
  | Node_recovered { node } -> Format.fprintf ppf " node %d" node
  | Item_lost { item; stage; node } ->
      Format.fprintf ppf " item %d stage %d node %d" item stage node
  | Item_redispatched { item; stage; node } ->
      Format.fprintf ppf " item %d stage %d node %d" item stage node
  | Failover_committed { mapping_before; mapping_after; items_redispatched } ->
      Format.fprintf ppf " %a -> %a redispatched %d" pp_mapping mapping_before pp_mapping
        mapping_after items_redispatched);
  Format.fprintf ppf "@]"
