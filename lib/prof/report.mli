(** The plain-text contention report: per-domain exclusive / await / idle
    seconds, steal and cache traffic, GC pressure, and the top tasks by
    exclusive time. *)

val task_exclusives : Prof.timeline -> (Prof.span * float) list
(** Every [Task] span paired with its {e exclusive} seconds: duration minus
    the direct child [Task] and [Await_wait] spans nested inside it (time a
    helping worker spent on foreign tasks, or asleep, while this task was
    open). Deterministic in the span list; no particular order. *)

val render : Prof.profile -> string
(** The report. Deterministic in the profile's contents. *)
