(* The recording core.

   One span buffer per domain, reached through Domain.DLS: appends never
   touch a lock or another domain's cache line. A global Atomic list
   (CAS-pushed) registers every buffer so [collect] can find them after
   the owning domains have died (pool workers are joined before the
   campaign report is rendered).

   [enable] bumps an epoch instead of walking domains: a DLS cell holding
   a buffer from an older epoch is stale, and the next record on that
   domain allocates a fresh buffer. That is what makes "profiler off
   allocates zero buffers" checkable — buffers exist only on domains that
   recorded a span while the current epoch was live.

   Clock discipline: bechamel's monotonic clock only (nanoseconds since an
   arbitrary origin, converted to float seconds). Wall-clock time never
   appears in a profile; lint R1 allowlists this directory for exactly
   this identifier. *)

type kind =
  | Task
  | Steal
  | Await_wait
  | Worker_idle
  | Cache_probe
  | Cache_store
  | Out_flush
  | Gc_sample
  | Queue_sample

type span = {
  kind : kind;
  label : string;
  t0 : float;
  t1 : float;
  a : int;
  b : int;
  words : float;
}

type timeline = { order : int; domain : string; spans : span list }
type profile = { origin : float; timelines : timeline list }

let now () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

type buf = {
  mutable order : int;
  mutable name : string;
  mutable spans : span array;
  mutable len : int;
}

let dummy =
  { kind = Gc_sample; label = ""; t0 = 0.0; t1 = 0.0; a = 0; b = 0; words = 0.0 }

let on = Atomic.make false
let epoch = Atomic.make 0
let registry : buf list Atomic.t = Atomic.make []
let buffers_created = Atomic.make 0

(* The domain's buffer and the epoch it belongs to. *)
type cell = { mutable cell_epoch : int; mutable cell_buf : buf option }

let slot : cell Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { cell_epoch = -1; cell_buf = None })

let enabled () = Atomic.get on

let rec push_registry b =
  let cur = Atomic.get registry in
  if not (Atomic.compare_and_set registry cur (b :: cur)) then push_registry b

let get_buf () =
  let cell = Domain.DLS.get slot in
  let e = Atomic.get epoch in
  match cell.cell_buf with
  | Some b when cell.cell_epoch = e -> b
  | _ ->
      let uid = (Domain.self () :> int) in
      let b =
        {
          order = max_int;
          name = Printf.sprintf "domain %d" uid;
          spans = Array.make 64 dummy;
          len = 0;
        }
      in
      Atomic.incr buffers_created;
      push_registry b;
      cell.cell_buf <- Some b;
      cell.cell_epoch <- e;
      b

let set_domain ~order name =
  if enabled () then begin
    let b = get_buf () in
    b.order <- order;
    b.name <- name
  end

let record kind ~label ~t0 ~t1 ~a ~b:bv ~words =
  if enabled () then begin
    let buf = get_buf () in
    if buf.len = Array.length buf.spans then begin
      let bigger = Array.make (2 * buf.len) dummy in
      Array.blit buf.spans 0 bigger 0 buf.len;
      buf.spans <- bigger
    end;
    buf.spans.(buf.len) <- { kind; label; t0; t1; a; b = bv; words };
    buf.len <- buf.len + 1
  end

let record_gc ~label =
  if enabled () then begin
    let s = Gc.quick_stat () in
    let t = now () in
    record Gc_sample ~label ~t0:t ~t1:t ~a:s.Gc.minor_collections
      ~b:s.Gc.major_collections ~words:s.Gc.minor_words
  end

(* Captured-output flushes arrive through Out's probe slot: Out sits below
   this library in the dependency order, so the hook points upward rather
   than Out calling the profiler directly. *)
let out_probe bytes =
  if enabled () then begin
    let t = now () in
    record Out_flush ~label:"" ~t0:t ~t1:t ~a:bytes ~b:0 ~words:0.0
  end

let enable () =
  Atomic.set registry [];
  Atomic.incr epoch;
  Atomic.set on true;
  Aspipe_util.Out.set_capture_probe (Some out_probe)

let disable () =
  Atomic.set on false;
  Aspipe_util.Out.set_capture_probe None

(* Spans are appended when they END, so nested spans precede their parent
   in buffer order; sorting by start time (longest first on ties) restores
   parents-before-children, which the report's nesting stack relies on. *)
let sorted_spans buf =
  let arr = Array.sub buf.spans 0 buf.len in
  Array.stable_sort
    (fun x y -> match compare x.t0 y.t0 with 0 -> compare y.t1 x.t1 | c -> c)
    arr;
  Array.to_list arr

let collect () =
  let bufs = Atomic.get registry in
  let timelines =
    List.map (fun b -> { order = b.order; domain = b.name; spans = sorted_spans b }) bufs
  in
  let timelines =
    List.sort
      (fun (a : timeline) (b : timeline) ->
        match compare a.order b.order with 0 -> compare a.domain b.domain | c -> c)
      timelines
  in
  let origin =
    List.fold_left
      (fun acc (tl : timeline) ->
        match tl.spans with s :: _ -> Float.min acc s.t0 | [] -> acc)
      infinity timelines
  in
  let origin = if origin = infinity then 0.0 else origin in
  let rebase s = { s with t0 = s.t0 -. origin; t1 = s.t1 -. origin } in
  {
    origin;
    timelines =
      List.map
        (fun (tl : timeline) -> { tl with spans = List.map rebase tl.spans })
        timelines;
  }

let buffers_allocated () = Atomic.get buffers_created

let kind_name = function
  | Task -> "task"
  | Steal -> "steal"
  | Await_wait -> "await"
  | Worker_idle -> "idle"
  | Cache_probe -> "cache probe"
  | Cache_store -> "cache store"
  | Out_flush -> "out flush"
  | Gc_sample -> "gc"
  | Queue_sample -> "queue"
