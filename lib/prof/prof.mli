(** Wall-clock profiler for the campaign runner.

    Everything else in this tree lives in virtual time (lint R1); this
    module is the one sanctioned consumer of a real clock outside the
    runner, and it reads the {e monotonic} clock only — wall-clock epochs
    never enter recorded data, so profiles are comparable across runs.

    Recording is a per-domain append into a buffer reached through
    [Domain.DLS]: no locks, no cross-domain traffic on the hot path. The
    global registry of buffers is an [Atomic.t] list pushed with CAS when a
    domain records its first span. With the profiler off (the default),
    {!record} is a no-op behind one atomic load and no buffer is ever
    allocated; call sites must still guard with [if Prof.enabled () ...]
    (lint R7) so argument construction costs nothing either. *)

type kind =
  | Task          (** a pool task; [a]/[b]/[words] carry GC deltas *)
  | Steal         (** instant: a claim that went hunting; [a] = 1 on success, [b] = deques probed *)
  | Await_wait    (** a sleep inside [Pool.await] while a nested batch drains *)
  | Worker_idle   (** a worker sleeping because nothing is claimable *)
  | Cache_probe   (** result-cache key+lookup; [a] = 1 on hit *)
  | Cache_store   (** result-cache write *)
  | Out_flush     (** captured output leaving a scope; [a] = bytes *)
  | Gc_sample     (** instant: [a]/[b] minor/major collections, [words] minor words *)
  | Queue_sample  (** instant: [a] own-deque depth, [b] pool pending count *)

type span = {
  kind : kind;
  label : string;  (** task id for [Task]; "" when the kind says it all *)
  t0 : float;      (** seconds; {!collect} rebases to the profile origin *)
  t1 : float;      (** = [t0] for instant kinds *)
  a : int;
  b : int;
  words : float;
}

type timeline = {
  order : int;      (** display order: 0 = main, 1 + i = worker i *)
  domain : string;  (** "main", "worker 3", or "domain <uid>" *)
  spans : span list;  (** sorted by [t0], parents before children *)
}

type profile = {
  origin : float;  (** monotonic seconds subtracted from every span *)
  timelines : timeline list;  (** sorted by [order], then name *)
}

val now : unit -> float
(** Monotonic seconds (arbitrary origin). Usable with the profiler off —
    the pool's busy accounting reads it unconditionally. *)

val enabled : unit -> bool

val enable : unit -> unit
(** Turn recording on, drop any previously collected spans, and install
    the {!Aspipe_util.Out} capture probe (so captured-output flushes are
    recorded as {!Out_flush} spans). *)

val disable : unit -> unit
(** Stop recording and clear the capture probe. Collected spans remain
    available to {!collect}. *)

val set_domain : order:int -> string -> unit
(** Name the calling domain's timeline. No-op while disabled. *)

val record :
  kind -> label:string -> t0:float -> t1:float -> a:int -> b:int -> words:float -> unit
(** Append one span to the calling domain's buffer. No-op while disabled,
    but call sites outside [lib/prof/] must still guard with
    [if Prof.enabled () ...] (lint R7). *)

val record_gc : label:string -> unit
(** Record a [Gc_sample] instant from [Gc.quick_stat]. Guard like {!record}. *)

val collect : unit -> profile
(** Snapshot every domain's buffer, rebased so the earliest span starts at
    0. Call only once recording has quiesced (workers joined); buffers are
    single-writer and collection does not synchronise with live appends. *)

val buffers_allocated : unit -> int
(** Cumulative count of per-domain buffers ever created — the witness that
    profiler-off runs allocate none (the count stays flat). *)

val kind_name : kind -> string
