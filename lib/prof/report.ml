(* Rendering a profile as a contention report.

   The interesting number per task is *exclusive* time: a helping worker's
   clock keeps running while it executes foreign tasks inside an await, so
   a task span's raw duration over-counts on exactly the runs where
   contention matters. The span list is sorted parents-before-children
   (Prof.sorted_spans), so one stack pass recovers the nesting: a direct
   child Task or Await_wait span's duration is charged against its parent
   task, nothing else is. *)

let task_exclusives (tl : Prof.timeline) =
  let out = ref [] in
  let stack = ref [] in
  let close (s, foreign) = out := (s, s.Prof.t1 -. s.Prof.t0 -. !foreign) :: !out in
  let rec pop_closed t0 =
    match !stack with
    | (s, foreign) :: rest when s.Prof.t1 <= t0 ->
        close (s, foreign);
        stack := rest;
        pop_closed t0
    | _ -> ()
  in
  List.iter
    (fun (s : Prof.span) ->
      pop_closed s.Prof.t0;
      (match (s.Prof.kind, !stack) with
      | (Prof.Task | Prof.Await_wait), (_, foreign) :: _ ->
          foreign := !foreign +. (s.Prof.t1 -. s.Prof.t0)
      | _ -> ());
      match s.Prof.kind with
      | Prof.Task -> stack := (s, ref 0.0) :: !stack
      | _ -> ())
    tl.Prof.spans;
  List.iter close !stack;
  List.rev !out

type row = {
  domain : string;
  tasks : int;
  exclusive : float;
  await : float;
  idle : float;
  steal_wins : int;
  steal_hunts : int;
  cache_hits : int;
  cache_probes : int;
  out_bytes : int;
  gc_minor : int;
  gc_mwords : float;
}

let sum kind f spans =
  List.fold_left
    (fun acc (s : Prof.span) -> if s.Prof.kind = kind then acc +. f s else acc)
    0.0 spans

let count kind pred spans =
  List.fold_left
    (fun acc (s : Prof.span) -> if s.Prof.kind = kind && pred s then acc + 1 else acc)
    0 spans

let duration (s : Prof.span) = s.Prof.t1 -. s.Prof.t0

let row_of (tl : Prof.timeline) =
  let spans = tl.Prof.spans in
  let gc = List.filter (fun (s : Prof.span) -> s.Prof.kind = Prof.Gc_sample) spans in
  let gc_minor, gc_mwords =
    match (gc, List.rev gc) with
    | first :: _, last :: _ ->
        (last.Prof.a - first.Prof.a, (last.Prof.words -. first.Prof.words) /. 1e6)
    | _ -> (0, 0.0)
  in
  {
    domain = tl.Prof.domain;
    tasks = count Prof.Task (fun _ -> true) spans;
    exclusive = List.fold_left (fun acc (_, e) -> acc +. e) 0.0 (task_exclusives tl);
    await = sum Prof.Await_wait duration spans;
    idle = sum Prof.Worker_idle duration spans;
    steal_wins = count Prof.Steal (fun s -> s.Prof.a = 1) spans;
    steal_hunts = count Prof.Steal (fun _ -> true) spans;
    cache_hits = count Prof.Cache_probe (fun s -> s.Prof.a = 1) spans;
    cache_probes = count Prof.Cache_probe (fun _ -> true) spans;
    out_bytes =
      List.fold_left
        (fun acc (s : Prof.span) -> if s.Prof.kind = Prof.Out_flush then acc + s.Prof.a else acc)
        0 spans;
    gc_minor;
    gc_mwords;
  }

let top_n = 10

let render (p : Prof.profile) =
  let buffer = Buffer.create 2048 in
  let rows = List.map row_of p.Prof.timelines in
  Buffer.add_string buffer "######## Wall-clock contention report ########\n";
  Buffer.add_string buffer
    (Printf.sprintf "%-12s %5s %8s %8s %8s %7s %7s %9s %10s %9s\n" "domain" "tasks"
       "excl s" "await s" "idle s" "steals" "cache" "out KiB" "gc minor" "alloc Mw");
  List.iter
    (fun r ->
      Buffer.add_string buffer
        (Printf.sprintf "%-12s %5d %8.3f %8.3f %8.3f %3d/%-3d %3d/%-3d %9.1f %10d %9.1f\n"
           r.domain r.tasks r.exclusive r.await r.idle r.steal_wins r.steal_hunts
           r.cache_hits r.cache_probes
           (float_of_int r.out_bytes /. 1024.0)
           r.gc_minor r.gc_mwords))
    rows;
  let totals f = List.fold_left (fun acc r -> acc +. f r) 0.0 rows in
  let totali f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  Buffer.add_string buffer
    (Printf.sprintf
       "totals: %d task(s), exclusive %.3f s, await %.3f s, idle %.3f s, %d/%d steals, %d/%d cache hits\n"
       (totali (fun r -> r.tasks))
       (totals (fun r -> r.exclusive))
       (totals (fun r -> r.await))
       (totals (fun r -> r.idle))
       (totali (fun r -> r.steal_wins))
       (totali (fun r -> r.steal_hunts))
       (totali (fun r -> r.cache_hits))
       (totali (fun r -> r.cache_probes)));
  let tasks =
    List.concat_map
      (fun tl ->
        List.map (fun (s, e) -> (s, e, tl.Prof.domain)) (task_exclusives tl))
      p.Prof.timelines
  in
  let tasks =
    List.stable_sort (fun (_, e1, _) (_, e2, _) -> compare (e2 : float) e1) tasks
  in
  if tasks <> [] then begin
    Buffer.add_string buffer
      (Printf.sprintf "top %d tasks by exclusive seconds:\n"
         (min top_n (List.length tasks)));
    List.iteri
      (fun i ((s : Prof.span), excl, domain) ->
        if i < top_n then
          Buffer.add_string buffer
            (Printf.sprintf "  %2d. %-10s %-12s excl %7.3f s  span %7.3f s  gc %d  alloc %.1f Mw\n"
               (i + 1)
               (if s.Prof.label = "" then "task" else s.Prof.label)
               domain excl (duration s) s.Prof.a (s.Prof.words /. 1e6)))
      tasks
  end;
  Buffer.contents buffer
