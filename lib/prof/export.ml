(* Profile -> Chrome trace-event JSON.

   Same document shape as Aspipe_obs.Trace_event, under a third process so
   a runner profile and a virtual-time trace can be concatenated for
   side-by-side viewing: one thread per domain timeline, "X" slices for
   duration spans, "i" instants for steals, "C" counter tracks (name-keyed
   per domain) for GC and queue-depth samples. Seconds scale to trace
   microseconds. *)

module Json = Aspipe_obs.Json

let runner_pid = 3
let us s = Json.Float (s *. 1e6)

let base ~name ~cat ~ph ~ts ~tid rest =
  Json.Obj
    ([
       ("name", Json.String name);
       ("cat", Json.String cat);
       ("ph", Json.String ph);
       ("ts", us ts);
       ("pid", Json.Int runner_pid);
       ("tid", Json.Int tid);
     ]
    @ rest)

let metadata ~name ~tid ~key arg =
  Json.Obj
    [
      ("name", Json.String name);
      ("ph", Json.String "M");
      ("pid", Json.Int runner_pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ (key, arg) ]);
    ]

let slice_cat (k : Prof.kind) =
  match k with
  | Prof.Cache_probe | Prof.Cache_store -> "cache"
  | Prof.Out_flush -> "out"
  | _ -> "runner"

let span_events ~tid ~domain (s : Prof.span) =
  let name = if s.Prof.label = "" then Prof.kind_name s.Prof.kind else s.Prof.label in
  match s.Prof.kind with
  | Prof.Task | Prof.Await_wait | Prof.Worker_idle | Prof.Cache_probe | Prof.Cache_store
  | Prof.Out_flush ->
      [
        base ~name ~cat:(slice_cat s.Prof.kind) ~ph:"X" ~ts:s.Prof.t0 ~tid
          [
            ("dur", us (s.Prof.t1 -. s.Prof.t0));
            ( "args",
              Json.Obj
                [
                  ("kind", Json.String (Prof.kind_name s.Prof.kind));
                  ("a", Json.Int s.Prof.a);
                  ("b", Json.Int s.Prof.b);
                  ("minor_words", Json.Float s.Prof.words);
                ] );
          ];
      ]
  | Prof.Steal ->
      [
        base ~name:"steal" ~cat:"runner" ~ph:"i" ~ts:s.Prof.t0 ~tid
          [
            ("s", Json.String "t");
            ( "args",
              Json.Obj
                [ ("success", Json.Bool (s.Prof.a = 1)); ("probed", Json.Int s.Prof.b) ] );
          ];
      ]
  | Prof.Gc_sample ->
      [
        base ~name:("gc " ^ domain) ~cat:"gc" ~ph:"C" ~ts:s.Prof.t0 ~tid
          [
            ( "args",
              Json.Obj
                [
                  ("minor collections", Json.Int s.Prof.a);
                  ("minor Mwords", Json.Float (s.Prof.words /. 1e6));
                ] );
          ];
      ]
  | Prof.Queue_sample ->
      [
        base ~name:("queue " ^ domain) ~cat:"runner" ~ph:"C" ~ts:s.Prof.t0 ~tid
          [
            ( "args",
              Json.Obj [ ("deque", Json.Int s.Prof.a); ("pending", Json.Int s.Prof.b) ] );
          ];
      ]

let to_json (p : Prof.profile) =
  let process =
    [
      metadata ~name:"process_name" ~tid:0 ~key:"name" (Json.String "runner");
      metadata ~name:"process_sort_index" ~tid:0 ~key:"sort_index" (Json.Int runner_pid);
    ]
  in
  let threads =
    List.concat
      (List.mapi
         (fun tid (tl : Prof.timeline) ->
           [
             metadata ~name:"thread_name" ~tid ~key:"name" (Json.String tl.Prof.domain);
             metadata ~name:"thread_sort_index" ~tid ~key:"sort_index" (Json.Int tid);
           ])
         p.Prof.timelines)
  in
  let events =
    List.concat
      (List.mapi
         (fun tid (tl : Prof.timeline) ->
           List.concat_map (span_events ~tid ~domain:tl.Prof.domain) tl.Prof.spans)
         p.Prof.timelines)
  in
  let spans =
    List.fold_left (fun acc tl -> acc + List.length tl.Prof.spans) 0 p.Prof.timelines
  in
  Json.Obj
    [
      ("traceEvents", Json.List (process @ threads @ events));
      ("displayTimeUnit", Json.String "ms");
      ( "otherData",
        Json.Obj
          [
            ("source", Json.String "aspipe campaign --profile");
            ("spans", Json.Int spans);
            ("origin_seconds", Json.Float p.Prof.origin);
          ] );
    ]

let to_string p = Json.to_string (to_json p)

let write p ~path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string p))
