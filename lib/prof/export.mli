(** Perfetto / Chrome trace-event export of a runner profile.

    Follows the same conventions as {!Aspipe_obs.Trace_event} (which owns
    pids 1 "grid" and 2 "network" for virtual-time traces): the runner is
    process 3, with one thread track per domain timeline. Duration spans
    render as complete ("X") slices, steals as instants, GC and queue
    samples as counter tracks. *)

val runner_pid : int
(** 3 — next to Trace_event's grid (1) and network (2) processes. *)

val to_json : Prof.profile -> Aspipe_obs.Json.t
(** The [{"traceEvents": [...], ...}] document. *)

val to_string : Prof.profile -> string

val write : Prof.profile -> path:string -> unit
