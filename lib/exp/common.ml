module Topology = Aspipe_grid.Topology
module Trace = Aspipe_grid.Trace
module Stream_spec = Aspipe_skel.Stream_spec
module Baselines = Aspipe_core.Baselines
module Stats = Aspipe_util.Stats

let default_latency = 0.01
let default_bandwidth = 1e7

let uniform_grid ~n ?(speed = 10.0) ?(latency = default_latency)
    ?(bandwidth = default_bandwidth) () engine =
  Topology.uniform engine ~n ~speed ~latency ~bandwidth ()

let heterogeneous_grid ~speeds ?(latency = default_latency)
    ?(bandwidth = default_bandwidth) () engine =
  Topology.heterogeneous engine ~speeds ~latency ~bandwidth ()

let batch_input ?(item_bytes = 1e4) ~items () = Stream_spec.make ~item_bytes ~items ()

let steady_throughput trace =
  let span = Trace.makespan trace in
  if span <= 0.0 then 0.0 else Trace.throughput_after trace (0.1 *. span)

let simulated_throughput ~scenario ~seed ~mapping =
  let outcome = Baselines.run_static ~label:"probe" ~mapping ~scenario ~seed in
  steady_throughput outcome.Baselines.trace

(* Mid-ranks: tied values share the average of the positions they span, the
   standard Spearman treatment, so identical tie groups in both columns
   cannot depress the correlation. *)
let ranks xs =
  let n = Array.length xs in
  let order = Array.init n Fun.id in
  Array.sort (fun a b -> Float.compare xs.(a) xs.(b)) order;
  let rank = Array.make n 0.0 in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && xs.(order.(!j + 1)) = xs.(order.(!i)) do
      incr j
    done;
    let mid = Float.of_int (!i + !j) /. 2.0 in
    for k = !i to !j do
      rank.(order.(k)) <- mid
    done;
    i := !j + 1
  done;
  rank

let spearman a b =
  let n = Array.length a in
  if n <> Array.length b || n < 2 then invalid_arg "Common.spearman";
  let ra = ranks a and rb = ranks b in
  let mean = Float.of_int (n - 1) /. 2.0 in
  let num = ref 0.0 and da = ref 0.0 and db = ref 0.0 in
  for i = 0 to n - 1 do
    let xa = ra.(i) -. mean and xb = rb.(i) -. mean in
    num := !num +. (xa *. xb);
    da := !da +. (xa *. xa);
    db := !db +. (xb *. xb)
  done;
  if !da = 0.0 || !db = 0.0 then 0.0 else !num /. sqrt (!da *. !db)

let scale ~quick n = if quick then max 20 (n / 5) else n

let mean_ci values = Stats.confidence95 (Array.of_list values)

(* --------------------------------------------------- replication splitting *)

(* Experiments hand their independent replications / sweep points to
   [par_map]; by default it is [List.map], and the campaign runner installs
   a pool-backed implementation so sweep points run on worker domains.
   Results come back by index, so installing a parallel implementation can
   never reorder a table. *)

type par_map_impl = { pmap : 'a 'b. ('a -> 'b) -> 'a list -> 'b list }

let sequential_par_map = { pmap = (fun f xs -> List.map f xs) }

(* Installed once by the campaign runner before any worker starts, but the
   read happens on worker domains: the cell must be Atomic, not a ref, so
   the publication is a proper release/acquire pair. *)
let par_map_hook = Atomic.make sequential_par_map

let set_par_map impl = Atomic.set par_map_hook impl
let reset_par_map () = Atomic.set par_map_hook sequential_par_map

let par_map f xs = (Atomic.get par_map_hook).pmap f xs
