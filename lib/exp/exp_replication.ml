module Stage = Aspipe_skel.Stage
module Repl_sim = Aspipe_skel.Repl_sim
module Rng = Aspipe_util.Rng
module Render = Aspipe_util.Render
module Costspec = Aspipe_model.Costspec
module Repl_model = Aspipe_model.Repl_model
module Scenario = Aspipe_core.Scenario
module Adaptive_repl = Aspipe_core.Adaptive_repl
module Loadgen = Aspipe_grid.Loadgen
module Stream_spec = Aspipe_skel.Stream_spec

let processors = 7

type row = {
  label : string;
  replicas : int list array;
  predicted : float;
  measured : float;
}

let hot_stages () = Aspipe_workload.Synthetic.hot_stage ~n:4 ~work:1.0 ~hot:2 ~factor:4.0 ()

let scenario ~quick =
  let items = Common.scale ~quick 1000 in
  Scenario.make ~name:"replication"
    ~make_topo:(Common.uniform_grid ~n:processors ())
    ~stages:(hot_stages ())
    ~input:(Common.batch_input ~item_bytes:1e4 ~items ())
    ()

let replica_label replicas =
  String.concat " "
    (Array.to_list
       (Array.map (fun ns -> "{" ^ String.concat "," (List.map string_of_int ns) ^ "}") replicas))

let rows ~quick =
  let scenario = scenario ~quick in
  let stages = hot_stages () in
  let reference_topo = Scenario.build scenario ~rng:(Rng.create 77) in
  let spec =
    Costspec.of_topology ~topo:reference_topo ~stages ~input:scenario.Scenario.input ()
  in
  let measure replicas =
    let topo = Scenario.build scenario ~rng:(Rng.create 78) in
    let trace =
      Repl_sim.execute ~rng:(Rng.create 79) ~topo ~stages ~replicas
        ~input:scenario.Scenario.input ()
    in
    Common.steady_throughput trace
  in
  let hot_replicated k =
    [| [ 0 ]; [ 1 ]; List.init k (fun i -> 2 + i); [ 2 + k ] |]
  in
  let swept =
    List.map
      (fun k ->
        let replicas = hot_replicated k in
        {
          label = Printf.sprintf "hot stage x%d" k;
          replicas;
          predicted = Repl_model.throughput spec ~replicas;
          measured = measure replicas;
        })
      [ 1; 2; 3; 4 ]
  in
  let greedy_replicas, greedy_predicted =
    Repl_model.best_replication spec ~budget:processors ~processors
  in
  swept
  @ [
      {
        label = Printf.sprintf "greedy, budget %d" processors;
        replicas = greedy_replicas;
        predicted = greedy_predicted;
        measured = measure greedy_replicas;
      };
    ]

type dynamic_result = {
  label : string;
  makespan : float;
  reconfigurations : int;
  final_replicas : int list array;
}

let dynamic_results ~quick =
  let items = Common.scale ~quick 1500 in
  let spacing = 0.167 in
  let step_at = spacing *. Float.of_int items *. 0.35 in
  let scenario =
    Scenario.make ~name:"replication-dyn"
      ~make_topo:(Common.uniform_grid ~n:processors ())
      ~loads:[ (3, Loadgen.Step { at = step_at; level = 0.1 }) ]
      ~stages:(hot_stages ())
      ~input:(Stream_spec.make ~arrival:(Stream_spec.Spaced spacing) ~item_bytes:1e4 ~items ())
      ~horizon:1e5 ()
  in
  let static =
    Adaptive_repl.run ~config:{ Adaptive_repl.default_config with adapt = false } ~scenario
      ~seed:21 ()
  in
  let adaptive = Adaptive_repl.run ~scenario ~seed:21 () in
  List.map
    (fun (label, (r : Adaptive_repl.report)) ->
      {
        label;
        makespan = r.Adaptive_repl.makespan;
        reconfigurations = r.Adaptive_repl.reconfigurations;
        final_replicas = r.Adaptive_repl.final_replicas;
      })
    [ ("static replication", static); ("adaptive replication", adaptive) ]

let run_e14 ~quick =
  let all = rows ~quick in
  let table =
    Render.Table.create
      ~title:"E14: replicating the hot stage (4-stage pipeline, stage 2 costs 4x, 7 nodes)"
      ~columns:[ "configuration"; "replica sets"; "predicted X"; "measured X"; "meas/pred" ]
  in
  List.iter
    (fun (r : row) ->
      Render.Table.add_row table
        [
          r.label;
          replica_label r.replicas;
          Printf.sprintf "%.2f" r.predicted;
          Printf.sprintf "%.2f" r.measured;
          Printf.sprintf "%.3f" (r.measured /. r.predicted);
        ])
    all;
  Render.Table.print table;
  let dynamic = dynamic_results ~quick in
  Aspipe_util.Out.printf "E14b: a hot-stage replica node collapses to 10%% mid-run\n";
  List.iter
    (fun r ->
      Aspipe_util.Out.printf "%-22s makespan %8.1f s, %d reconfiguration(s), final %s\n" r.label
        r.makespan r.reconfigurations (replica_label r.final_replicas))
    dynamic;
  Render.print_figure ~title:"E14 (figure): throughput vs hot-stage replicas"
    ~x_label:"replicas of the hot stage" ~y_label:"items/s"
    [
      Render.Series.make "measured"
        (Array.of_list
           (List.filteri (fun i _ -> i < 4) all
           |> List.mapi (fun i r -> (Float.of_int (i + 1), r.measured))));
      Render.Series.make "model"
        (Array.of_list
           (List.filteri (fun i _ -> i < 4) all
           |> List.mapi (fun i r -> (Float.of_int (i + 1), r.predicted))));
    ];
  Aspipe_util.Out.newline ()
