module Stage = Aspipe_skel.Stage
module Variate = Aspipe_util.Variate
module Rng = Aspipe_util.Rng
module Render = Aspipe_util.Render
module Topology = Aspipe_grid.Topology
module Mapping = Aspipe_model.Mapping
module Costspec = Aspipe_model.Costspec
module Analytic = Aspipe_model.Analytic
module Search = Aspipe_model.Search
module Scenario = Aspipe_core.Scenario
module Baselines = Aspipe_core.Baselines

let seed = 16
let local_nodes = 3

type point = {
  remote_speed : float;
  local_only : float;
  unconstrained : float;
  uses_remote : bool;
}

let scenario ~quick ~remote_speed =
  let items = Common.scale ~quick 400 in
  let stages =
    Array.init 5 (fun i ->
        Stage.make
          ~name:(Printf.sprintf "ms%d" i)
          ~output_bytes:1e4
          ~work:(Variate.Constant 1.0)
          ())
  in
  Scenario.make
    ~name:(Printf.sprintf "multisite-%g" remote_speed)
    ~make_topo:(fun engine ->
      Topology.two_site engine ~site_a:(Array.make local_nodes 10.0)
        ~site_b:[| remote_speed; remote_speed |] ~intra_latency:0.001 ~intra_bandwidth:1e8
        ~inter_latency:0.15 ~inter_bandwidth:2e6 ())
    ~stages
    ~input:(Common.batch_input ~item_bytes:1e4 ~items ())
    ()

let points ~quick =
  List.map
    (fun remote_speed ->
      let sc = scenario ~quick ~remote_speed in
      let topo = Scenario.build sc ~rng:(Rng.create 60) in
      let spec =
        Costspec.of_topology ~topo ~stages:sc.Scenario.stages ~input:sc.Scenario.input ()
      in
      let evaluator m = Analytic.throughput spec m in
      let best = Search.exhaustive ~stages:5 ~processors:(Topology.size topo) evaluator in
      (* Local-only: the same search over mappings confined to site A. *)
      let local_candidates =
        List.filter
          (fun m -> Array.for_all (fun p -> p < local_nodes) (Mapping.to_array m))
          (Mapping.enumerate ~stages:5 ~processors:(Topology.size topo) ())
      in
      let local_best = Search.best_of local_candidates evaluator in
      let measure m =
        Common.simulated_throughput ~scenario:sc ~seed ~mapping:(Mapping.to_array m)
      in
      {
        remote_speed;
        local_only = measure local_best.Search.mapping;
        unconstrained = measure best.Search.mapping;
        uses_remote =
          Array.exists (fun p -> p >= local_nodes) (Mapping.to_array best.Search.mapping);
      })
    [ 5.0; 10.0; 20.0; 40.0; 80.0 ]

let run_e16 ~quick =
  let all = points ~quick in
  Render.print_figure
    ~title:"E16: remote-site offload crossover (5 stages; remote site behind a 150ms/2MBps WAN)"
    ~x_label:"remote node speed (local = 10)" ~y_label:"items/s"
    [
      Render.Series.make "best local-only mapping"
        (Array.of_list (List.map (fun p -> (p.remote_speed, p.local_only)) all));
      Render.Series.make "best unconstrained mapping"
        (Array.of_list (List.map (fun p -> (p.remote_speed, p.unconstrained)) all));
    ];
  List.iter
    (fun p ->
      Aspipe_util.Out.printf "remote %5.1fx: local-only %.2f, unconstrained %.2f items/s (%s)\n"
        (p.remote_speed /. 10.0) p.local_only p.unconstrained
        (if p.uses_remote then "offloads to the remote site" else "stays local"))
    all;
  Aspipe_util.Out.newline ()
