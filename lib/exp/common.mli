(** Shared plumbing for the reconstructed evaluation: canonical grid
    parameters, scenario builders, measurement helpers and small statistics
    used across experiment modules. *)

val default_latency : float
(** 10 ms — the intra-cluster link latency used unless a scenario varies it. *)

val default_bandwidth : float
(** 10 MB/s. *)

val uniform_grid :
  n:int -> ?speed:float -> ?latency:float -> ?bandwidth:float -> unit ->
  Aspipe_des.Engine.t -> Aspipe_grid.Topology.t
(** Topology recipe for {!Aspipe_core.Scenario.make}. Default speed 10. *)

val heterogeneous_grid :
  speeds:float array -> ?latency:float -> ?bandwidth:float -> unit ->
  Aspipe_des.Engine.t -> Aspipe_grid.Topology.t

val batch_input : ?item_bytes:float -> items:int -> unit -> Aspipe_skel.Stream_spec.t
(** All items at t = 0 (saturated pipeline). *)

val steady_throughput : Aspipe_grid.Trace.t -> float
(** Throughput ignoring the first 10% of the run (pipeline fill). *)

val simulated_throughput :
  scenario:Aspipe_core.Scenario.t -> seed:int -> mapping:int array -> float
(** Run the mapping statically in the scenario's world and measure
    {!steady_throughput}. *)

val spearman : float array -> float array -> float
(** Spearman rank correlation (ties broken by index; arrays of equal
    length ≥ 2). *)

val scale : quick:bool -> int -> int
(** Shrink an iteration/item count in quick mode (divides by 5, min 20). *)

val mean_ci : float list -> float * float
(** Mean and 95% half-width. *)

type par_map_impl = { pmap : 'a 'b. ('a -> 'b) -> 'a list -> 'b list }
(** A polymorphic map — the replication-splitting hook. *)

val par_map : ('a -> 'b) -> 'a list -> 'b list
(** Map over independent replications or sweep points. [List.map] by
    default; the campaign runner installs a domain-pool implementation.
    Results are returned by index regardless of completion order, so the
    body must be self-contained (its own [Rng] from an explicit seed, no
    printing, no shared mutable state) and the output is then identical to
    the sequential map. *)

val set_par_map : par_map_impl -> unit
(** Install a parallel implementation (done once by the campaign runner
    before any worker starts). *)

val reset_par_map : unit -> unit
(** Back to [List.map]. *)
