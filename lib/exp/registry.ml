type kind = Table | Figure

type t = {
  id : string;
  kind : kind;
  title : string;
  run : quick:bool -> unit;
}

let all =
  [
    { id = "E1"; kind = Table; title = "Model validation: analytic & CTMC vs simulation";
      run = (fun ~quick -> Exp_model.run_e1 ~quick) };
    { id = "E2"; kind = Table; title = "Model-chosen vs simulated-best mapping per scenario";
      run = (fun ~quick -> Exp_model.run_e2 ~quick) };
    { id = "E3"; kind = Figure; title = "Throughput timeline under a load step";
      run = (fun ~quick -> Exp_adaptation.run_e3 ~quick) };
    { id = "E4"; kind = Figure; title = "Completion time vs hidden load severity";
      run = (fun ~quick -> Exp_adaptation.run_e4 ~quick) };
    { id = "E5"; kind = Figure; title = "Throughput scalability with processors";
      run = (fun ~quick -> Exp_scale.run_e5 ~quick) };
    { id = "E6"; kind = Table; title = "Cost of the mapping decision path";
      run = (fun ~quick -> Exp_scale.run_e6 ~quick) };
    { id = "E7"; kind = Table; title = "Sensitivity to monitoring interval and threshold";
      run = (fun ~quick -> Exp_adaptation.run_e7 ~quick) };
    { id = "E8"; kind = Figure; title = "Migration-cost crossover";
      run = (fun ~quick -> Exp_adaptation.run_e8 ~quick) };
    { id = "E9"; kind = Table; title = "Forecaster accuracy per signal family";
      run = (fun ~quick -> Exp_forecast.run_e9 ~quick) };
    { id = "E10"; kind = Figure; title = "Shared-memory pipeline & farm speedup";
      run = (fun ~quick -> Exp_mc.run_e10 ~quick) };
    { id = "E11"; kind = Table; title = "Campaign: workloads x strategies on a dynamic grid";
      run = (fun ~quick -> Exp_campaign.run_e11 ~quick) };
    { id = "E12"; kind = Figure; title = "Task farm: dispatch disciplines and adaptive worker sets";
      run = (fun ~quick -> Exp_farm.run_e12 ~quick) };
    { id = "E13"; kind = Table; title = "Ablations: buffer capacity and CTMC solver";
      run = (fun ~quick -> Exp_ablation.run_e13 ~quick) };
    { id = "E14"; kind = Table; title = "Replicating the hot stage inside the pipeline";
      run = (fun ~quick -> Exp_replication.run_e14 ~quick) };
    { id = "E15"; kind = Figure; title = "Adaptation to network congestion (colocate to survive)";
      run = (fun ~quick -> Exp_network.run_e15 ~quick) };
    { id = "E16"; kind = Figure; title = "Remote-site offload crossover";
      run = (fun ~quick -> Exp_multisite.run_e16 ~quick) };
    { id = "E17"; kind = Table; title = "Policy ablation on the dynamic grid";
      run = (fun ~quick -> Exp_policy.run_e17 ~quick) };
    { id = "E18"; kind = Table; title = "Mid-run node crash: DNF vs restart vs failover";
      run = (fun ~quick -> Exp_fault.run_e18 ~quick) };
    { id = "E19"; kind = Table; title = "MTBF sweep under Poisson crash-repair";
      run = (fun ~quick -> Exp_fault.run_e19 ~quick) };
    { id = "E20"; kind = Table; title = "Network partition mid-run (blackout, colocate to survive)";
      run = (fun ~quick -> Exp_fault.run_e20 ~quick) };
    { id = "E21"; kind = Table; title = "Serving: autoscalers over a diurnal arrival cycle";
      run = (fun ~quick -> Exp_serve.run_e21 ~quick) };
    { id = "E22"; kind = Table; title = "Serving: flash crowd blind spot of the divergence trigger";
      run = (fun ~quick -> Exp_serve.run_e22 ~quick) };
    { id = "E23"; kind = Table; title = "Serving: recorded arrival trace replayed across autoscalers";
      run = (fun ~quick -> Exp_serve.run_e23 ~quick) };
    { id = "E24"; kind = Table; title = "Serving: mid-run outage of the provisioned host";
      run = (fun ~quick -> Exp_serve.run_e24 ~quick) };
  ]

let ids = List.map (fun e -> e.id) all

let to_json () =
  Aspipe_obs.Json.List
    (List.map
       (fun e ->
         Aspipe_obs.Json.Obj
           [
             ("id", Aspipe_obs.Json.String e.id);
             ("kind", Aspipe_obs.Json.String (match e.kind with Table -> "table" | Figure -> "figure"));
             ("title", Aspipe_obs.Json.String e.title);
           ])
       all)

let find id =
  let target = String.uppercase_ascii id in
  List.find_opt (fun e -> String.uppercase_ascii e.id = target) all

let header e =
  Printf.sprintf "######## %s (%s): %s ########\n" e.id
    (match e.kind with Table -> "table" | Figure -> "figure")
    e.title

let job e ~quick () =
  Aspipe_util.Out.capture (fun () ->
      Aspipe_util.Out.print_string (header e);
      e.run ~quick)

let run_all ~quick =
  List.iter
    (fun e ->
      Aspipe_util.Out.print_string (header e);
      e.run ~quick)
    all
