module Engine = Aspipe_des.Engine
module Topology = Aspipe_grid.Topology
module Node = Aspipe_grid.Node
module Link = Aspipe_grid.Link
module Stage = Aspipe_skel.Stage
module Variate = Aspipe_util.Variate
module Rng = Aspipe_util.Rng
module Render = Aspipe_util.Render
module Mapping = Aspipe_model.Mapping
module Costspec = Aspipe_model.Costspec
module Analytic = Aspipe_model.Analytic
module Ctmc = Aspipe_model.Ctmc
module Predictor = Aspipe_model.Predictor
module Search = Aspipe_model.Search
module Scenario = Aspipe_core.Scenario
module Baselines = Aspipe_core.Baselines

(* ------------------------------------------------------------------ E1 *)

type e1_row = {
  mapping : int array;
  analytic : float;
  ctmc : float;
  simulated : float;
}

let e1_stages () =
  Array.init 3 (fun i ->
      Stage.make
        ~name:(Printf.sprintf "e1s%d" i)
        ~output_bytes:1e4
        ~work:(Variate.Exponential { rate = 1.0 })
        ())

let e1_scenario ~quick =
  let items = Common.scale ~quick 400 in
  Scenario.make ~name:"e1"
    ~make_topo:(Common.uniform_grid ~n:3 ~speed:10.0 ~latency:0.001 ())
    ~stages:(e1_stages ()) ~input:(Common.batch_input ~item_bytes:1e4 ~items ()) ()

let e1_rows ~quick =
  let scenario = e1_scenario ~quick in
  let seed = 1 in
  (* A throwaway world gives the ground-truth cost spec. *)
  let topo = Scenario.build scenario ~rng:(Rng.create 99) in
  let spec =
    Costspec.of_topology ~topo ~stages:scenario.Scenario.stages ~input:scenario.Scenario.input ()
  in
  let mappings = Mapping.enumerate ~fix_first_on:0 ~stages:3 ~processors:3 () in
  (* Each mapping simulates independently (the scenario spec is immutable
     and every probe builds its own world), so the grid splits across the
     campaign pool's workers. *)
  Common.par_map
    (fun m ->
      {
        mapping = Mapping.to_array m;
        analytic = Analytic.throughput spec m;
        ctmc = Ctmc.throughput (Ctmc.of_costspec spec m);
        simulated = Common.simulated_throughput ~scenario ~seed ~mapping:(Mapping.to_array m);
      })
    mappings

let e1_rank_correlations rows =
  let column f = Array.of_list (List.map f rows) in
  let sim = column (fun r -> r.simulated) in
  ( Common.spearman (column (fun r -> r.analytic)) sim,
    Common.spearman (column (fun r -> r.ctmc)) sim )

let mapping_label m =
  "(" ^ String.concat "," (List.map string_of_int (Array.to_list m)) ^ ")"

let run_e1 ~quick =
  let rows = e1_rows ~quick in
  let table =
    Render.Table.create
      ~title:"E1: model validation, 3 stages x 3 processors (throughput, items/s)"
      ~columns:[ "mapping"; "analytic"; "ctmc"; "simulated"; "ctmc/sim"; "analytic/sim" ]
  in
  List.iter
    (fun r ->
      Render.Table.add_row table
        [
          mapping_label r.mapping;
          Printf.sprintf "%.4f" r.analytic;
          Printf.sprintf "%.4f" r.ctmc;
          Printf.sprintf "%.4f" r.simulated;
          Printf.sprintf "%.3f" (r.ctmc /. r.simulated);
          Printf.sprintf "%.3f" (r.analytic /. r.simulated);
        ])
    rows;
  Render.Table.print table;
  let rho_a, rho_c = e1_rank_correlations rows in
  let argmax column =
    List.fold_left (fun acc r -> if column r > column acc then r else acc) (List.hd rows) rows
  in
  let top_sim = (argmax (fun r -> r.simulated)).simulated in
  Aspipe_util.Out.printf
    "rank correlation vs simulation: analytic rho=%.3f, ctmc rho=%.3f\n\
     top-choice agreement: analytic argmax simulates at %.1f%% of the true best,\n\
     ctmc argmax at %.1f%% (within-tier differences are ~2%%, below model resolution)\n\
     (analytic bounds from above: saturation rate; ctmc bounds from below: bufferless sync)\n\n"
    rho_a rho_c
    (100.0 *. (argmax (fun r -> r.analytic)).simulated /. top_sim)
    (100.0 *. (argmax (fun r -> r.ctmc)).simulated /. top_sim)

(* ------------------------------------------------------------------ E2 *)

type e2_row = {
  label : string;
  model_mapping : int array;
  model_predicted : float;
  model_simulated : float;
  oracle_mapping : int array;
  oracle_simulated : float;
}

(* Paper-style parameter sets: per-stage times t_i on each processor and
   pairwise latencies l_ij (seconds); work is 1.0 per stage so speed_i = 1/t_i. *)
type e2_setting = {
  name : string;
  times : float array;  (* t1 t2 t3 *)
  lat : float array array;  (* symmetric 3x3, diagonal ignored *)
}

let sym l12 l23 l13 =
  [| [| 0.0; l12; l13 |]; [| l12; 0.0; l23 |]; [| l13; l23; 0.0 |] |]

let e2_settings =
  [
    { name = "fast net, equal cpus"; times = [| 0.1; 0.1; 0.1 |]; lat = sym 1e-4 1e-4 1e-4 };
    { name = "fast net, cpu3 busy"; times = [| 0.1; 0.1; 1.0 |]; lat = sym 1e-4 1e-4 1e-4 };
    { name = "slow net, cpu3 busy"; times = [| 0.1; 0.1; 1.0 |]; lat = sym 0.1 0.1 0.1 };
    { name = "very slow net, cpu3 busy"; times = [| 0.1; 0.1; 1.0 |]; lat = sym 1.0 1.0 1.0 };
    { name = "slow links to cpu3"; times = [| 0.1; 0.1; 0.1 |]; lat = sym 0.1 1.0 1.0 };
    { name = "cpu3 fast but remote"; times = [| 1.0; 1.0; 0.01 |]; lat = sym 0.1 1.0 1.0 };
  ]

let e2_scenario ~quick setting =
  let items = Common.scale ~quick 300 in
  let make_topo engine =
    let nodes =
      Array.mapi (fun id t -> Node.create engine ~id ~speed:(1.0 /. t) ()) setting.times
    in
    let links ~src ~dst =
      Link.create engine ~latency:setting.lat.(src).(dst) ~bandwidth:1e8 ()
    in
    let user_links _ = Link.create engine ~latency:1e-4 ~bandwidth:1e8 () in
    Topology.custom engine ~nodes ~links ~user_links
  in
  let stages =
    Array.init 3 (fun i ->
        Stage.make
          ~name:(Printf.sprintf "e2s%d" i)
          ~output_bytes:1e3
          ~work:(Variate.Constant 1.0)
          ())
  in
  Scenario.make ~name:setting.name ~make_topo ~stages
    ~input:(Common.batch_input ~item_bytes:1e3 ~items ())
    ()

let e2_rows ~quick =
  Common.par_map
    (fun setting ->
      let scenario = e2_scenario ~quick setting in
      let seed = 2 in
      let topo = Scenario.build scenario ~rng:(Rng.create 98) in
      let spec =
        Costspec.of_topology ~topo ~stages:scenario.Scenario.stages
          ~input:scenario.Scenario.input ()
      in
      let predictor = Predictor.make spec in
      let model = Predictor.choose ~fix_first_on:0 predictor in
      let model_mapping = Mapping.to_array model.Search.mapping in
      let oracle, _ = Baselines.oracle_static ~fix_first_on:0 ~scenario ~seed () in
      {
        label = setting.name;
        model_mapping;
        model_predicted = model.Search.score;
        model_simulated = Common.simulated_throughput ~scenario ~seed ~mapping:model_mapping;
        oracle_mapping = Mapping.to_array oracle.Baselines.mapping;
        oracle_simulated = Common.steady_throughput oracle.Baselines.trace;
      })
    e2_settings

let run_e2 ~quick =
  let rows = e2_rows ~quick in
  let table =
    Render.Table.create ~title:"E2: model-chosen vs simulated-best mapping (3 stages, 3 cpus)"
      ~columns:
        [ "scenario"; "model map"; "pred X"; "sim X(model)"; "oracle map"; "sim X(oracle)"; "ratio" ]
  in
  List.iter
    (fun r ->
      Render.Table.add_row table
        [
          r.label;
          mapping_label r.model_mapping;
          Printf.sprintf "%.4f" r.model_predicted;
          Printf.sprintf "%.4f" r.model_simulated;
          mapping_label r.oracle_mapping;
          Printf.sprintf "%.4f" r.oracle_simulated;
          Printf.sprintf "%.3f"
            (if r.oracle_simulated > 0.0 then r.model_simulated /. r.oracle_simulated else nan);
        ])
    rows;
  Render.Table.print table;
  Aspipe_util.Out.newline ()
