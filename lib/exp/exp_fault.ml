module Stage = Aspipe_skel.Stage
module Stream_spec = Aspipe_skel.Stream_spec
module Variate = Aspipe_util.Variate
module Render = Aspipe_util.Render
module Mapping = Aspipe_model.Mapping
module Fault = Aspipe_fault.Fault
module Scenario = Aspipe_core.Scenario
module Adaptive = Aspipe_core.Adaptive
module Policy = Aspipe_core.Policy
module Baselines = Aspipe_core.Baselines

let seed = 18

(* A balanced 4-stage pipeline on 4 unequal nodes: every node carries a
   stage under the model-best mapping, so any node is a meaningful crash
   victim. *)
let crash_stages () =
  Array.init 4 (fun i ->
      Stage.make
        ~name:(Printf.sprintf "ft%d" i)
        ~output_bytes:2e4 ~state_bytes:5e5
        ~work:(Variate.Constant 1.0)
        ())

let crash_scenario ?(faults = []) ~items () =
  Scenario.make ~name:"mid-run-crash"
    ~make_topo:(Common.heterogeneous_grid ~speeds:[| 12.0; 10.0; 10.0; 8.0 |] ())
    ~faults ~stages:(crash_stages ())
    ~input:(Common.batch_input ~items ())
    ~horizon:1e5 ()

type e18_row = {
  label : string;
  finish : float option;
  completed : int;
  total : int;
  items_lost : int;
  items_redispatched : int;
  failovers : int;
  restarts : int;
}

let e18_rows ~quick =
  let items = Common.scale ~quick 400 in
  (* Probe the fault-free world for the model-best static schedule, then
     kill the node that schedule put the tail stage on, 70% of the way
     through its nominal makespan. The same fault schedule is replayed
     against every strategy. *)
  let nominal = Baselines.static_model_best ~scenario:(crash_scenario ~items ()) ~seed () in
  let mapping = Mapping.to_array nominal.Baselines.mapping in
  let victim = mapping.(Array.length mapping - 1) in
  let crash_at = 0.7 *. nominal.Baselines.makespan in
  let scenario = crash_scenario ~faults:[ (victim, Fault.Crash_at crash_at) ] ~items () in
  let static =
    Baselines.static_faulty ~label:"static (model best, no FT)" ~mapping ~scenario ~seed ()
  in
  let restart = Baselines.static_restart ~scenario ~seed () in
  let adaptive = Adaptive.run ~scenario ~seed () in
  ( crash_at,
    victim,
    [
      {
        label = static.Baselines.f_label;
        finish = static.Baselines.finish;
        completed = static.Baselines.completed;
        total = static.Baselines.total;
        items_lost = static.Baselines.items_lost;
        items_redispatched = 0;
        failovers = 0;
        restarts = 0;
      };
      {
        label = "static + restart on failure";
        finish = restart.Baselines.finish;
        completed = restart.Baselines.completed;
        total = restart.Baselines.total;
        items_lost = restart.Baselines.items_lost;
        items_redispatched = 0;
        restarts = restart.Baselines.restarts;
        failovers = 0;
      };
      {
        label = "adaptive failover";
        finish = Some adaptive.Adaptive.makespan;
        completed = Aspipe_grid.Trace.items_completed adaptive.Adaptive.trace;
        total = items;
        items_lost = adaptive.Adaptive.items_lost;
        items_redispatched = adaptive.Adaptive.items_redispatched;
        failovers = adaptive.Adaptive.failover_count;
        restarts = 0;
      };
    ] )

let run_e18 ~quick =
  let crash_at, victim, rows = e18_rows ~quick in
  let table =
    Render.Table.create
      ~title:
        (Printf.sprintf
           "E18: fail-stop crash of node %d at t=%.1f s (the model-best tail-stage host)" victim
           crash_at)
      ~columns:[ "strategy"; "finish (s)"; "completed"; "lost"; "re-dispatched"; "failovers"; "restarts" ]
  in
  List.iter
    (fun r ->
      Render.Table.add_row table
        [
          r.label;
          (match r.finish with Some f -> Printf.sprintf "%.1f" f | None -> "DNF");
          Printf.sprintf "%d/%d" r.completed r.total;
          string_of_int r.items_lost;
          string_of_int r.items_redispatched;
          string_of_int r.failovers;
          string_of_int r.restarts;
        ])
    rows;
  Render.Table.print table;
  Aspipe_util.Out.newline ()

(* ------------------------------------------------------------------ E19 *)

(* MTBF and MTTR only mean anything relative to how long the workload
   runs, so both are expressed as multiples of the arrival span (items x
   spacing) and the sweep keeps its shape in quick mode. *)
let e19_scenario ~mtbf ~mttr ~items () =
  let faults =
    match mtbf with
    | None -> []
    | Some m ->
        (* Node 0 never faults: there is always at least one survivor to
           fail over to, as in a grid with one managed head node. *)
        List.map (fun n -> (n, Fault.Poisson { mtbf = m; mttr })) [ 1; 2; 3 ]
  in
  Scenario.make ~name:"mtbf-sweep"
    ~make_topo:(Common.uniform_grid ~n:4 ())
    ~faults ~stages:(crash_stages ())
    ~input:(Stream_spec.make ~arrival:(Stream_spec.Spaced 0.25) ~item_bytes:1e4 ~items ())
    ~horizon:1e5 ()

type e19_row = {
  mtbf : float option;
  static_finish : float option;
  adaptive_makespan : float;
  throughput : float;
  e19_failovers : int;
  e19_lost : int;
  e19_redispatched : int;
}

let e19_rows ~quick =
  let items = Common.scale ~quick 800 in
  let span = Float.of_int items *. 0.25 in
  let mttr = 0.2 *. span in
  let mtbfs = [ None; Some (4.0 *. span); Some (1.5 *. span); Some (0.5 *. span) ] in
  (* Sweep points are independent replications: each builds its own
     scenario world from explicit seeds, so they split across the pool. *)
  Common.par_map
    (fun mtbf ->
      let scenario = e19_scenario ~mtbf ~mttr ~items () in
      let nominal =
        Baselines.static_model_best ~scenario:(e19_scenario ~mtbf:None ~mttr ~items ()) ~seed ()
      in
      let static =
        Baselines.static_faulty ~label:"static" ~mapping:(Mapping.to_array nominal.Baselines.mapping)
          ~scenario ~seed ()
      in
      let config =
        { Adaptive.default_config with failover = { Policy.default_failover with max_failovers = 64 } }
      in
      let adaptive = Adaptive.run ~config ~scenario ~seed () in
      {
        mtbf;
        static_finish = static.Baselines.finish;
        adaptive_makespan = adaptive.Adaptive.makespan;
        throughput = adaptive.Adaptive.throughput;
        e19_failovers = adaptive.Adaptive.failover_count;
        e19_lost = adaptive.Adaptive.items_lost;
        e19_redispatched = adaptive.Adaptive.items_redispatched;
      })
    mtbfs

let run_e19 ~quick =
  let rows = e19_rows ~quick in
  let table =
    Render.Table.create
      ~title:
        "E19: MTBF sweep (Poisson crash-repair on nodes 1-3, MTTR = 20% of the arrival span; \
         static replays on the same node after repair, adaptive fails over)"
      ~columns:
        [ "MTBF (s)"; "static finish (s)"; "adaptive (s)"; "items/s"; "failovers"; "lost"; "re-dispatched" ]
  in
  List.iter
    (fun r ->
      Render.Table.add_row table
        [
          (match r.mtbf with None -> "no faults" | Some m -> Printf.sprintf "%.0f" m);
          (match r.static_finish with Some f -> Printf.sprintf "%.1f" f | None -> "DNF");
          Printf.sprintf "%.1f" r.adaptive_makespan;
          Printf.sprintf "%.3f" r.throughput;
          string_of_int r.e19_failovers;
          string_of_int r.e19_lost;
          string_of_int r.e19_redispatched;
        ])
    rows;
  Render.Table.print table;
  Aspipe_util.Out.newline ()

(* ------------------------------------------------------------------ E20 *)

(* E15's congestion story with a harder fault: the inter-node routes do not
   degrade to 10%, they black out to the quality floor. A spread static
   mapping keeps paying ~100x transfers; the adaptive engine's link
   forecasts collapse and the search colocates. *)
let partition_scenario ~quick =
  let items = Common.scale ~quick 900 in
  let part_at = 0.3 *. Float.of_int items *. 0.3 in
  let pairs = [ (0, 1); (0, 2); (1, 2) ] in
  Scenario.make ~name:"partition"
    ~make_topo:(Common.heterogeneous_grid ~speeds:[| 12.0; 10.0; 10.0 |] ())
    ~net_faults:(List.map (fun pair -> (pair, Fault.Windows [ (part_at, 1e4) ])) pairs)
    ~stages:
      (Array.init 4 (fun i ->
           Stage.make
             ~name:(Printf.sprintf "part%d" i)
             ~output_bytes:5e5 ~state_bytes:1e6
             ~work:(Variate.Constant 1.0)
             ()))
    ~input:(Stream_spec.make ~arrival:(Stream_spec.Spaced 0.3) ~item_bytes:1e4 ~items ())
    ~horizon:1e5 ()

type e20_row = {
  e20_label : string;
  e20_makespan : float;
  e20_adaptations : int;
  final_mapping : int array;
  final_distinct_nodes : int;
}

let distinct_nodes mapping = List.length (List.sort_uniq compare (Array.to_list mapping))

let e20_rows ~quick =
  let scenario = partition_scenario ~quick in
  let static = Baselines.static_model_best ~scenario ~seed () in
  let adaptive = Adaptive.run ~scenario ~seed () in
  [
    {
      e20_label = "static (model best at t=0)";
      e20_makespan = static.Baselines.makespan;
      e20_adaptations = 0;
      final_mapping = Mapping.to_array static.Baselines.mapping;
      final_distinct_nodes = distinct_nodes (Mapping.to_array static.Baselines.mapping);
    };
    {
      e20_label = "adaptive (threshold policy)";
      e20_makespan = adaptive.Adaptive.makespan;
      e20_adaptations = adaptive.Adaptive.adaptation_count;
      final_mapping = Mapping.to_array adaptive.Adaptive.final_mapping;
      final_distinct_nodes = distinct_nodes (Mapping.to_array adaptive.Adaptive.final_mapping);
    };
  ]

let run_e20 ~quick =
  let rows = e20_rows ~quick in
  let table =
    Render.Table.create
      ~title:
        "E20: network partition mid-run (all inter-node routes black out to the quality floor)"
      ~columns:[ "strategy"; "makespan (s)"; "adaptations"; "final mapping"; "nodes used" ]
  in
  List.iter
    (fun r ->
      Render.Table.add_row table
        [
          r.e20_label;
          Printf.sprintf "%.1f" r.e20_makespan;
          string_of_int r.e20_adaptations;
          String.concat "," (List.map string_of_int (Array.to_list r.final_mapping));
          string_of_int r.final_distinct_nodes;
        ])
    rows;
  Render.Table.print table;
  Aspipe_util.Out.newline ()
