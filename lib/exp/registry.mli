(** The experiment index: every reconstructed table and figure, addressable
    by id, runnable from the CLI and from [bench/main.exe]. *)

type kind = Table | Figure

type t = {
  id : string;
  kind : kind;
  title : string;
  run : quick:bool -> unit;
}

val all : t list
(** E1 … E20 in order. *)

val ids : string list
(** The ids of {!all}, in order — the single source every listing surface
    (CLI [list-experiments], bench [--only]) derives from. *)

val to_json : unit -> Aspipe_obs.Json.t
(** Machine-readable listing: a JSON array of [{id; kind; title}]. *)

val find : string -> t option
(** Case-insensitive lookup by id. *)

val header : t -> string
(** The ["######## E<n> (kind): title ########\n"] banner every runner
    prints above an experiment's output. *)

val job : t -> quick:bool -> unit -> string
(** [job e ~quick] is the experiment as a pure closure: running it returns
    the experiment's complete output (banner included) as bytes instead of
    printing, via {!Aspipe_util.Out} capture. This is the unit the campaign
    runner schedules on worker domains; the experiment's own RNG, engine,
    bus and metrics are all created inside the closure, so runs are
    isolated and byte-identical however they are scheduled. *)

val run_all : quick:bool -> unit
(** Run every experiment, printing a header per experiment. *)
