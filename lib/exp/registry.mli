(** The experiment index: every reconstructed table and figure, addressable
    by id, runnable from the CLI and from [bench/main.exe]. *)

type kind = Table | Figure

type t = {
  id : string;
  kind : kind;
  title : string;
  run : quick:bool -> unit;
}

val all : t list
(** E1 … E20 in order. *)

val ids : string list
(** The ids of {!all}, in order — the single source every listing surface
    (CLI [list-experiments], bench [--only]) derives from. *)

val to_json : unit -> Aspipe_obs.Json.t
(** Machine-readable listing: a JSON array of [{id; kind; title}]. *)

val find : string -> t option
(** Case-insensitive lookup by id. *)

val run_all : quick:bool -> unit
(** Run every experiment, printing a header per experiment. *)
