module Stage = Aspipe_skel.Stage
module Stream_spec = Aspipe_skel.Stream_spec
module Variate = Aspipe_util.Variate
module Render = Aspipe_util.Render
module Trace = Aspipe_grid.Trace
module Loadgen = Aspipe_grid.Loadgen
module Mapping = Aspipe_model.Mapping
module Scenario = Aspipe_core.Scenario
module Adaptive = Aspipe_core.Adaptive
module Baselines = Aspipe_core.Baselines

let seed = 15

(* 4 stages with 0.5 MB payloads on 3 nodes: at nominal quality a transfer
   costs ~0.06 s against a 0.1 s service; at 10% quality it costs ~0.6 s and
   dominates every spread stage cycle. *)
let congestion_scenario ~quick =
  let items = Common.scale ~quick 1200 in
  let congest_at = 0.3 *. Float.of_int items *. 0.35 in
  let stages =
    Array.init 4 (fun i ->
        Stage.make
          ~name:(Printf.sprintf "net%d" i)
          ~output_bytes:5e5 ~state_bytes:1e6
          ~work:(Variate.Constant 1.0)
          ())
  in
  let pairs = [ (0, 1); (0, 2); (1, 2) ] in
  Scenario.make ~name:"congestion"
    ~make_topo:(Common.heterogeneous_grid ~speeds:[| 12.0; 10.0; 10.0 |] ())
    ~net_loads:(List.map (fun pair -> (pair, Loadgen.Step { at = congest_at; level = 0.1 })) pairs)
    ~stages
    ~input:(Stream_spec.make ~arrival:(Stream_spec.Spaced 0.3) ~item_bytes:1e4 ~items ())
    ~horizon:1e5 ()

type result = {
  label : string;
  series : (float * float) array;
  makespan : float;
  adaptations : int;
  final_mapping : int array;
  final_distinct_nodes : int;
}

let distinct_nodes mapping =
  List.length (List.sort_uniq compare (Array.to_list mapping))

let results ~quick =
  let scenario = congestion_scenario ~quick in
  let window = 20.0 in
  let static = Baselines.static_model_best ~scenario ~seed () in
  let adaptive = Adaptive.run ~scenario ~seed () in
  let clair = Baselines.clairvoyant ~scenario ~seed in
  [
    {
      label = "static (model best at t=0)";
      series = Trace.throughput_series static.Baselines.trace ~window;
      makespan = static.Baselines.makespan;
      adaptations = 0;
      final_mapping = Mapping.to_array static.Baselines.mapping;
      final_distinct_nodes = distinct_nodes (Mapping.to_array static.Baselines.mapping);
    };
    {
      label = "adaptive (threshold policy)";
      series = Trace.throughput_series adaptive.Adaptive.trace ~window;
      makespan = adaptive.Adaptive.makespan;
      adaptations = adaptive.Adaptive.adaptation_count;
      final_mapping = Mapping.to_array adaptive.Adaptive.final_mapping;
      final_distinct_nodes = distinct_nodes (Mapping.to_array adaptive.Adaptive.final_mapping);
    };
    {
      label = "clairvoyant";
      series = Trace.throughput_series clair.Adaptive.trace ~window;
      makespan = clair.Adaptive.makespan;
      adaptations = clair.Adaptive.adaptation_count;
      final_mapping = Mapping.to_array clair.Adaptive.final_mapping;
      final_distinct_nodes = distinct_nodes (Mapping.to_array clair.Adaptive.final_mapping);
    };
  ]

let run_e15 ~quick =
  let all = results ~quick in
  Render.print_figure
    ~title:"E15: network congestion mid-run (all inter-node routes drop to 10% quality)"
    ~x_label:"time (s)" ~y_label:"items/s"
    (List.map (fun r -> Render.Series.make r.label r.series) all);
  List.iter
    (fun r ->
      Aspipe_util.Out.printf "%-28s makespan %8.1f s, %d adaptation(s), final mapping (%s) on %d node(s)\n"
        r.label r.makespan r.adaptations
        (String.concat "," (List.map string_of_int (Array.to_list r.final_mapping)))
        r.final_distinct_nodes)
    all;
  Aspipe_util.Out.newline ()
