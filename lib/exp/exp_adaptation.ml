module Stage = Aspipe_skel.Stage
module Stream_spec = Aspipe_skel.Stream_spec
module Variate = Aspipe_util.Variate
module Render = Aspipe_util.Render
module Trace = Aspipe_grid.Trace
module Loadgen = Aspipe_grid.Loadgen
module Monitor = Aspipe_grid.Monitor
module Scenario = Aspipe_core.Scenario
module Adaptive = Aspipe_core.Adaptive
module Policy = Aspipe_core.Policy
module Baselines = Aspipe_core.Baselines
module Migration = Aspipe_core.Migration

let seed = 7

(* ------------------------------------------------------------------ E3 *)

let load_step_scenario ~quick ?(state_bytes = 2e6) ?(step_level = 0.2) () =
  let items = Common.scale ~quick 1500 in
  (* The step lands 40% into the nominal run so quick runs see it too. *)
  let step_at = 0.25 *. Float.of_int items *. 0.4 in
  let stages =
    Array.init 4 (fun i ->
        Stage.make
          ~name:(Printf.sprintf "ls%d" i)
          ~output_bytes:1e4 ~state_bytes
          ~work:(Variate.Constant 1.0)
          ())
  in
  Scenario.make ~name:"load-step"
    ~make_topo:(Common.heterogeneous_grid ~speeds:[| 12.0; 10.0; 10.0 |] ())
    ~loads:[ (0, Loadgen.Step { at = step_at; level = step_level }) ]
    ~stages
    ~input:(Stream_spec.make ~arrival:(Stream_spec.Spaced 0.25) ~item_bytes:1e4 ~items ())
    ~horizon:1e5 ()

type e3_result = {
  label : string;
  series : (float * float) array;
  makespan : float;
  adaptations : int;
}

let window = 20.0

let e3_results ~quick =
  let scenario = load_step_scenario ~quick () in
  let static = Baselines.static_model_best ~scenario ~seed () in
  let adaptive = Adaptive.run ~scenario ~seed () in
  let clair = Baselines.clairvoyant ~scenario ~seed in
  [
    {
      label = "static (model best at t=0)";
      series = Trace.throughput_series static.Baselines.trace ~window;
      makespan = static.Baselines.makespan;
      adaptations = 0;
    };
    {
      label = "adaptive (threshold policy)";
      series = Trace.throughput_series adaptive.Adaptive.trace ~window;
      makespan = adaptive.Adaptive.makespan;
      adaptations = adaptive.Adaptive.adaptation_count;
    };
    {
      label = "clairvoyant";
      series = Trace.throughput_series clair.Adaptive.trace ~window;
      makespan = clair.Adaptive.makespan;
      adaptations = clair.Adaptive.adaptation_count;
    };
  ]

let run_e3 ~quick =
  let results = e3_results ~quick in
  Render.print_figure ~title:"E3: throughput timeline, availability step at t=150s"
    ~x_label:"time (s)" ~y_label:"items/s"
    (List.map (fun r -> Render.Series.make r.label r.series) results);
  List.iter
    (fun r -> Aspipe_util.Out.printf "%-32s makespan %8.1f s, %d adaptation(s)\n" r.label r.makespan r.adaptations)
    results;
  Aspipe_util.Out.newline ()

(* ------------------------------------------------------------------ E4 *)

type e4_point = { severity : float; static_blind : float; static_informed : float;
                  adaptive : float; clairvoyant : float }

let e4_scenario ~quick ~severity =
  let items = Common.scale ~quick 400 in
  Scenario.make
    ~name:(Printf.sprintf "hidden-load-%g" severity)
    ~make_topo:(Common.uniform_grid ~n:4 ())
    ~loads:[ (0, Loadgen.Constant (1.0 /. severity)) ]
    ~stages:(Stage.balanced ~n:6 ~work:1.0 ())
    ~input:(Common.batch_input ~items ())
    ()

let blind_config =
  { Adaptive.default_config with initial_resource_reading = false }

let e4_points ~quick =
  List.map
    (fun severity ->
      let scenario = e4_scenario ~quick ~severity in
      let blind = Baselines.static_round_robin ~scenario ~seed in
      let informed = Baselines.static_model_best ~scenario ~seed () in
      let adaptive = Adaptive.run ~config:blind_config ~scenario ~seed () in
      let clair = Baselines.clairvoyant ~scenario ~seed in
      {
        severity;
        static_blind = blind.Baselines.makespan;
        static_informed = informed.Baselines.makespan;
        adaptive = adaptive.Adaptive.makespan;
        clairvoyant = clair.Adaptive.makespan;
      })
    [ 1.0; 2.0; 4.0; 8.0; 16.0 ]

let run_e4 ~quick =
  let points = e4_points ~quick in
  let series f = Array.of_list (List.map (fun p -> (p.severity, f p)) points) in
  Render.print_figure
    ~title:"E4: completion time vs hidden load severity on node 0 (6 stages, 4 nodes)"
    ~x_label:"severity k (node 0 at 1/k)" ~y_label:"makespan (s)"
    [
      Render.Series.make "static-blind (round robin)" (series (fun p -> p.static_blind));
      Render.Series.make "static-informed (model)" (series (fun p -> p.static_informed));
      Render.Series.make "adaptive (blind start)" (series (fun p -> p.adaptive));
      Render.Series.make "clairvoyant" (series (fun p -> p.clairvoyant));
    ];
  Aspipe_util.Out.newline ()

(* ------------------------------------------------------------------ E7 *)

type e7_cell = {
  monitor_every : float;
  drop : float;
  completion : float;
  migrations : int;
}

let e7_cells ~quick =
  (* A milder step (to 55% availability) than E3's: the observed throughput
     drops to roughly 0.55 of the adopted expectation, so the three drop
     thresholds genuinely separate — 0.1 and 0.25 fire, 0.5 does not. *)
  let scenario = load_step_scenario ~quick ~step_level:0.55 () in
  List.concat_map
    (fun monitor_every ->
      List.map
        (fun drop ->
          let config =
            {
              Adaptive.default_config with
              monitor_every;
              evaluate_every = Float.max 5.0 monitor_every;
              policy = (fun () -> Policy.threshold ~drop ());
            }
          in
          let report = Adaptive.run ~config ~scenario ~seed () in
          {
            monitor_every;
            drop;
            completion = report.Adaptive.makespan;
            migrations = report.Adaptive.adaptation_count;
          })
        [ 0.1; 0.25; 0.5 ])
    [ 2.0; 10.0; 30.0 ]

type e7_sensor_cell = {
  dropout : float;
  noise : float;
  completion : float;
  migrations : int;
}

let e7_sensor_cells ~quick =
  let scenario = load_step_scenario ~quick () in
  List.map
    (fun (dropout, noise) ->
      let config =
        {
          Adaptive.default_config with
          sensor = { Monitor.noise; dropout };
        }
      in
      let report = Adaptive.run ~config ~scenario ~seed () in
      {
        dropout;
        noise;
        completion = report.Adaptive.makespan;
        migrations = report.Adaptive.adaptation_count;
      })
    [ (0.0, 0.0); (0.0, 0.1); (0.3, 0.02); (0.7, 0.02); (0.95, 0.02) ]

let run_e7 ~quick =
  let cells = e7_cells ~quick in
  let table =
    Render.Table.create
      ~title:"E7: sensitivity to monitoring interval and adaptation threshold"
      ~columns:[ "monitor every (s)"; "drop threshold"; "completion (s)"; "migrations" ]
  in
  List.iter
    (fun c ->
      Render.Table.add_row table
        [
          Printf.sprintf "%g" c.monitor_every;
          Printf.sprintf "%g" c.drop;
          Printf.sprintf "%.1f" c.completion;
          string_of_int c.migrations;
        ])
    cells;
  Render.Table.print table;
  let sensor_table =
    Render.Table.create ~title:"E7b: sensor robustness (load-step scenario)"
      ~columns:[ "dropout"; "noise (rel sd)"; "completion (s)"; "migrations" ]
  in
  List.iter
    (fun c ->
      Render.Table.add_row sensor_table
        [
          Printf.sprintf "%g" c.dropout;
          Printf.sprintf "%g" c.noise;
          Printf.sprintf "%.1f" c.completion;
          string_of_int c.migrations;
        ])
    (e7_sensor_cells ~quick);
  Render.Table.print sensor_table;
  Aspipe_util.Out.newline ()

(* ------------------------------------------------------------------ E8 *)

type e8_point = {
  state_bytes : float;
  stall_estimate : float;
  adaptive_makespan : float;
  static_makespan : float;
  adaptations : int;
}

let e8_points ~quick =
  List.map
    (fun state_bytes ->
      let scenario = load_step_scenario ~quick ~state_bytes () in
      let static = Baselines.static_model_best ~scenario ~seed () in
      let adaptive = Adaptive.run ~scenario ~seed () in
      (* Representative stall: one stage's state over a default link plus the
         restart penalty. *)
      let stall =
        (state_bytes /. Common.default_bandwidth) +. Common.default_latency
        +. Migration.default.Migration.restart_penalty
      in
      {
        state_bytes;
        stall_estimate = stall;
        adaptive_makespan = adaptive.Adaptive.makespan;
        static_makespan = static.Baselines.makespan;
        adaptations = adaptive.Adaptive.adaptation_count;
      })
    [ 1e6; 1e7; 1e8; 5e8; 1e9; 3e9 ]

let run_e8 ~quick =
  let points = e8_points ~quick in
  let table =
    Render.Table.create ~title:"E8: migration-cost crossover (load-step scenario)"
      ~columns:
        [ "state bytes"; "est. stall (s)"; "adaptive (s)"; "static (s)"; "gain"; "migrations" ]
  in
  List.iter
    (fun p ->
      Render.Table.add_row table
        [
          Printf.sprintf "%.0e" p.state_bytes;
          Printf.sprintf "%.1f" p.stall_estimate;
          Printf.sprintf "%.1f" p.adaptive_makespan;
          Printf.sprintf "%.1f" p.static_makespan;
          Printf.sprintf "%.3f" (p.static_makespan /. p.adaptive_makespan);
          string_of_int p.adaptations;
        ])
    points;
  Render.Table.print table;
  Render.print_figure ~title:"E8 (figure): makespan vs stage state size"
    ~x_label:"log10 state bytes" ~y_label:"makespan (s)"
    [
      Render.Series.make "adaptive"
        (Array.of_list (List.map (fun p -> (Float.log10 p.state_bytes, p.adaptive_makespan)) points));
      Render.Series.make "static"
        (Array.of_list (List.map (fun p -> (Float.log10 p.state_bytes, p.static_makespan)) points));
    ];
  Aspipe_util.Out.newline ()
