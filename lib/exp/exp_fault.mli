(** E18–E20: the fault-tolerance evaluation.

    Every strategy replays the {e identical} fault schedule (it lives in
    the scenario, not the runner), so the outcomes differ only in how each
    strategy responds to the same failures.

    - E18 (table): a one-shot fail-stop crash of the node the model-best
      static schedule relies on, 70% of the way through its nominal
      makespan. Static DNFs; restart-from-scratch completes but pays the
      abandoned work plus a detection timeout; adaptive failover re-maps
      the orphaned stages and replays only the checkpointed items.
    - E19 (table): Poisson crash-repair (MTTR 40 s) on three of four
      nodes across an MTBF sweep. Static waits out every repair on the
      same node; adaptive fails over and re-absorbs recovered nodes.
    - E20 (table): E15's congestion story with a blackout — all
      inter-node routes drop to the quality floor mid-run. The adaptive
      engine's link forecasts collapse and the search colocates. *)

type e18_row = {
  label : string;
  finish : float option;  (** [None] = did not finish *)
  completed : int;
  total : int;
  items_lost : int;
  items_redispatched : int;
  failovers : int;
  restarts : int;
}

val e18_rows : quick:bool -> float * int * e18_row list
(** [(crash_time, victim_node, rows)] — static / restart / adaptive. *)

val run_e18 : quick:bool -> unit

type e19_row = {
  mtbf : float option;  (** [None] = fault-free reference row *)
  static_finish : float option;
  adaptive_makespan : float;
  throughput : float;
  e19_failovers : int;
  e19_lost : int;
  e19_redispatched : int;
}

val e19_rows : quick:bool -> e19_row list
val run_e19 : quick:bool -> unit

type e20_row = {
  e20_label : string;
  e20_makespan : float;
  e20_adaptations : int;
  final_mapping : int array;
  final_distinct_nodes : int;
}

val e20_rows : quick:bool -> e20_row list
val run_e20 : quick:bool -> unit
