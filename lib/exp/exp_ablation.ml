module Stage = Aspipe_skel.Stage
module Skel_sim = Aspipe_skel.Skel_sim
module Variate = Aspipe_util.Variate
module Rng = Aspipe_util.Rng
module Render = Aspipe_util.Render
module Mapping = Aspipe_model.Mapping
module Costspec = Aspipe_model.Costspec
module Analytic = Aspipe_model.Analytic
module Ctmc = Aspipe_model.Ctmc
module Scenario = Aspipe_core.Scenario

(* ------------------------------------------------------------- buffers *)

type buffer_row = {
  capacity : int option;
  simulated : float;
  ctmc : float;
  analytic : float;
}

(* Bursty stages (lognormal, cv ≈ 1.8): buffers matter exactly when service
   times are irregular enough that a slow item would otherwise stall its
   neighbours. *)
let e13_stages () =
  Array.init 3 (fun i ->
      Stage.make
        ~name:(Printf.sprintf "e13s%d" i)
        ~output_bytes:1e4
        ~work:(Variate.Lognormal { mu = -0.72; sigma = 1.2 })
        ())

let buffer_rows ~quick =
  (* The workload realization is identical across rows (work draws are keyed
     on item identity), so a capacity can only improve on a smaller one;
     the sweep must come out monotone. Item count is NOT quick-scaled: the
     comparison is the experiment. *)
  ignore quick;
  let items = 600 in
  let stages = e13_stages () in
  let scenario =
    Scenario.make ~name:"e13"
      ~make_topo:(Common.uniform_grid ~n:3 ~speed:10.0 ~latency:0.001 ())
      ~stages
      ~input:(Common.batch_input ~item_bytes:1e4 ~items ())
      ()
  in
  let mapping = [| 0; 1; 2 |] in
  let reference_topo = Scenario.build scenario ~rng:(Rng.create 90) in
  let spec =
    Costspec.of_topology ~topo:reference_topo ~stages ~input:scenario.Scenario.input ()
  in
  let m = Mapping.of_array ~processors:3 mapping in
  let ctmc = Ctmc.throughput (Ctmc.of_costspec spec m) in
  let analytic = Analytic.throughput spec m in
  List.map
    (fun capacity ->
      let topo = Scenario.build scenario ~rng:(Rng.create 91) in
      let trace =
        Skel_sim.execute ~rng:(Rng.create 92) ?queue_capacity:capacity ~topo ~stages ~mapping
          ~input:scenario.Scenario.input ()
      in
      (* Full-run throughput over the shared realization: items / makespan. *)
      let simulated = Float.of_int items /. Aspipe_grid.Trace.makespan trace in
      { capacity; simulated; ctmc; analytic })
    [ Some 1; Some 2; Some 4; Some 8; Some 16; None ]

(* -------------------------------------------------------------- solver *)

type solver_row = {
  stiffness : float;
  gauss_seidel_ms : float;
  power_ms : float;
  agree : bool;
}

let time_ms f =
  (* lint: wall-clock-ok E13 reports real CTMC solver wall-time *)
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (* lint: wall-clock-ok timing columns are labelled non-reproducible (see CI's drop_wallclock) *)
  (result, (Unix.gettimeofday () -. t0) *. 1000.0)

let solver_rows ~quick =
  let stiffness_levels = if quick then [ 1e1; 1e3 ] else [ 1e1; 1e2; 1e3; 1e4; 1e5 ] in
  List.map
    (fun stiffness ->
      (* 4 stages, unit service rates, moves faster by [stiffness]. *)
      let model =
        Ctmc.build ~service_rates:(Array.make 4 1.0) ~move_rates:(Array.make 5 stiffness)
      in
      let gs, gauss_seidel_ms =
        time_ms (fun () -> Ctmc.throughput ~solver:Ctmc.Gauss_seidel model)
      in
      let power_result, power_ms =
        time_ms (fun () ->
            try Some (Ctmc.throughput ~solver:Ctmc.Power ~max_iter:2_000_000 model)
            with Failure _ -> None)
      in
      match power_result with
      | Some p ->
          { stiffness; gauss_seidel_ms; power_ms; agree = Float.abs (p -. gs) < 1e-6 *. gs }
      | None -> { stiffness; gauss_seidel_ms; power_ms = nan; agree = false })
    stiffness_levels

let run_e13 ~quick =
  let rows = buffer_rows ~quick in
  let table =
    Render.Table.create
      ~title:
        "E13a: buffer-capacity ablation, 3 bursty stages spread over 3 nodes (items/s over a shared realization)"
      ~columns:[ "buffer capacity"; "simulated"; "vs ctmc"; "vs analytic" ]
  in
  List.iter
    (fun r ->
      Render.Table.add_row table
        [
          (match r.capacity with Some c -> string_of_int c | None -> "unbounded");
          Printf.sprintf "%.3f" r.simulated;
          Printf.sprintf "%.3f" (r.simulated /. r.ctmc);
          Printf.sprintf "%.3f" (r.simulated /. r.analytic);
        ])
    rows;
  Render.Table.print table;
  (match rows with
  | first :: _ ->
      let last = List.nth rows (List.length rows - 1) in
      Aspipe_util.Out.printf
        "reference evaluators: ctmc %.3f (bufferless), analytic %.3f (saturation bound)\n\
         capacity 1 sits at %.0f%% of ctmc; unbounded reaches %.0f%% of analytic\n\n"
        first.ctmc first.analytic
        (100.0 *. first.simulated /. first.ctmc)
        (100.0 *. last.simulated /. last.analytic)
  | [] -> ());
  let solver_table =
    Render.Table.create ~title:"E13b: CTMC solver ablation (4 stages, 81 states)"
      ~columns:[ "stiffness (max/min rate)"; "gauss-seidel (ms)"; "power (ms)"; "agree" ]
  in
  List.iter
    (fun r ->
      Render.Table.add_row solver_table
        [
          Printf.sprintf "%.0e" r.stiffness;
          Printf.sprintf "%.2f" r.gauss_seidel_ms;
          (if Float.is_nan r.power_ms then "diverged/timeout" else Printf.sprintf "%.2f" r.power_ms);
          string_of_bool r.agree;
        ])
    (solver_rows ~quick);
  Render.Table.print solver_table;
  Aspipe_util.Out.newline ()
