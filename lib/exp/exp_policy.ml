module Stream_spec = Aspipe_skel.Stream_spec
module Loadgen = Aspipe_grid.Loadgen
module Render = Aspipe_util.Render
module Scenario = Aspipe_core.Scenario
module Adaptive = Aspipe_core.Adaptive
module Policy = Aspipe_core.Policy

type row = {
  policy : string;
  mean_makespan : float;
  ci95 : float;
  mean_migrations : float;
}

(* The campaign's dynamic grid, hot-stage workload. *)
let scenario ~quick =
  let items = Common.scale ~quick 800 in
  Scenario.make ~name:"policy-ablation"
    ~make_topo:(Common.uniform_grid ~n:4 ())
    ~loads:
      [
        (1, Loadgen.Markov_on_off { to_busy_rate = 1.0 /. 25.0; to_free_rate = 1.0 /. 20.0; busy_level = 0.25 });
        (2, Loadgen.Random_walk { every = 5.0; sigma = 0.15; lo = 0.3; hi = 1.0 });
      ]
    ~stages:(Aspipe_workload.Synthetic.hot_stage ~n:6 ~factor:4.0 ())
    ~input:(Stream_spec.make ~arrival:(Stream_spec.Spaced 0.25) ~item_bytes:1e4 ~items ())
    ~horizon:1e5 ()

let policies =
  [
    ("never", fun () -> Policy.never ());
    ("threshold drop=0.1", fun () -> Policy.threshold ~drop:0.1 ());
    ("threshold drop=0.25 (default)", fun () -> Policy.threshold ());
    ("threshold drop=0.5", fun () -> Policy.threshold ~drop:0.5 ());
    ("threshold, no cool-down", fun () -> Policy.threshold ~cooldown:0.0 ());
    ("periodic min_gain=0.1", fun () -> Policy.periodic_best ());
    ("always best", fun () -> Policy.always_best ());
  ]

let rows ~quick =
  let scenario = scenario ~quick in
  let seeds = if quick then [ 31 ] else [ 31; 32; 33 ] in
  List.map
    (fun (name, make_policy) ->
      let reports =
        Common.par_map
          (fun seed ->
            let config = { Adaptive.default_config with policy = make_policy } in
            Adaptive.run ~config ~scenario ~seed ())
          seeds
      in
      let mean_makespan, ci95 =
        Common.mean_ci (List.map (fun r -> r.Adaptive.makespan) reports)
      in
      let mean_migrations =
        List.fold_left (fun acc r -> acc +. Float.of_int r.Adaptive.adaptation_count) 0.0 reports
        /. Float.of_int (List.length reports)
      in
      { policy = name; mean_makespan; ci95; mean_migrations })
    policies

let run_e17 ~quick =
  let all = rows ~quick in
  let table =
    Render.Table.create
      ~title:"E17: policy ablation on the dynamic grid (hot-stage workload, mean over seeds)"
      ~columns:[ "policy"; "makespan (s)"; "± CI"; "mean migrations" ]
  in
  List.iter
    (fun r ->
      Render.Table.add_row table
        [
          r.policy;
          Printf.sprintf "%.1f" r.mean_makespan;
          Printf.sprintf "%.1f" r.ci95;
          Printf.sprintf "%.1f" r.mean_migrations;
        ])
    all;
  Render.Table.print table;
  Aspipe_util.Out.newline ()
