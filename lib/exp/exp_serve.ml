module Stage = Aspipe_skel.Stage
module Stream_spec = Aspipe_skel.Stream_spec
module Variate = Aspipe_util.Variate
module Render = Aspipe_util.Render
module Rng = Aspipe_util.Rng
module Fault = Aspipe_fault.Fault
module Scenario = Aspipe_core.Scenario
module Arrival = Aspipe_serve.Arrival
module Slo = Aspipe_serve.Slo
module Autoscaler = Aspipe_serve.Autoscaler
module Serve = Aspipe_serve.Serve

let seed = 21

(* The serving estate: a 4-stage unit-work pipeline on 5 equal nodes, so
   capacity comes in clean steps — ~2.5 items/s fully colocated on one
   node, ~10 items/s fully spread — and there is always a spare node to
   fail over to. *)
let serve_stages () =
  Array.init 4 (fun i ->
      Stage.make
        ~name:(Printf.sprintf "srv%d" i)
        ~output_bytes:1e4 ~state_bytes:1e5
        ~work:(Variate.Constant 1.0)
        ())

let serve_scenario ?(faults = []) ~name ~horizon () =
  Scenario.make ~name
    ~make_topo:(Common.uniform_grid ~n:5 ())
    ~faults ~stages:(serve_stages ())
    ~input:(Stream_spec.make ~item_bytes:1e4 ~items:1 ())
    ~horizon ()

let slo () = Slo.spec ~target_quantile:0.95 ~threshold:6.0 ~window:30.0

(* One row per autoscaler, all serving the identical arrival draw. The
   static row is the over-provisioned anchor (throughput-best mapping held
   for the whole run); everything else provisions for the base rate and
   must scale. The divergence trigger appears twice because no drop setting
   is right for an open system: sensitive, it misreads demand lulls as
   capacity loss and overscales to the full fleet (it can never scale
   back); desensitized, saturation pins observed throughput at the adopted
   rate and the surge is invisible until the SLO is long gone. *)
let panel () =
  [
    ("static (best, over-prov.)", `Best, Autoscaler.static ());
    ("divergence drop=0.25", `Cheapest, Autoscaler.remap_on_divergence ~drop:0.25 ());
    ("divergence drop=0.75", `Cheapest, Autoscaler.remap_on_divergence ~drop:0.75 ());
    ("queue-length", `Cheapest, Autoscaler.queue_length ~high:25 ~low:4 ());
    ("latency-gradient", `Cheapest, Autoscaler.latency_gradient ());
  ]

let reports ~scenario ~arrival ~provision_rate =
  Common.par_map
    (fun (label, initial, autoscaler) ->
      ( label,
        Serve.run ~initial ~autoscaler ~arrival ~slo:(slo ()) ~provision_rate ~scenario
          ~seed () ))
    (panel ())

let fmt_pct x = if Float.is_nan x then "-" else Printf.sprintf "%.0f%%" (100.0 *. x)
let fmt_s x = if Float.is_nan x then "-" else Printf.sprintf "%.2f" x

let print_table ~title rows =
  let table =
    Render.Table.create ~title
      ~columns:
        [
          "autoscaler"; "arrivals"; "done"; "p50 (s)"; "p99 (s)"; "p999 (s)";
          "SLO att."; "node-s"; "nodes"; "remaps";
        ]
  in
  List.iter
    (fun (label, (r : Serve.report)) ->
      Render.Table.add_row table
        [
          label;
          string_of_int r.Serve.arrivals;
          string_of_int r.Serve.completions;
          fmt_s r.Serve.p50;
          fmt_s r.Serve.p99;
          fmt_s r.Serve.p999;
          fmt_pct r.Serve.attainment;
          Printf.sprintf "%.0f" r.Serve.node_seconds;
          Printf.sprintf "%.2f" r.Serve.mean_nodes;
          string_of_int r.Serve.adaptation_count;
        ])
    rows;
  Render.Table.print table;
  Aspipe_util.Out.newline ()

(* ------------------------------------------------------------------ E21 *)

(* A diurnal day: demand swings between ~0.4 and ~2.8 items/s around a
   one-node capacity of ~2.5. The demand-aware triggers ride the cycle —
   scaling out for the peaks, back in for the troughs — where static and
   divergence-triggered runs converge to the full fleet and keep paying
   for it through every trough. *)
let e21_horizon ~quick = if quick then 480.0 else 960.0

let e21_reports ~quick =
  let horizon = e21_horizon ~quick in
  let scenario = serve_scenario ~name:"serve-diurnal" ~horizon () in
  let arrival = Arrival.diurnal ~base:1.6 ~amplitude:1.2 ~period:240.0 in
  reports ~scenario ~arrival ~provision_rate:1.6

let run_e21 ~quick =
  print_table
    ~title:
      (Printf.sprintf
         "E21: diurnal serving day (rate 1.6%s1.2 sin, period 240 s, horizon %.0f s; SLO p95 \
          <= 6 s / 30 s windows)"
         "\xc2\xb1" (e21_horizon ~quick))
    (e21_reports ~quick)

(* ------------------------------------------------------------------ E22 *)

(* The flash crowd is the divergence trigger's blind spot: demand jumps
   past the provisioned capacity, so the pipeline saturates — and observed
   throughput pins at the adopted rate instead of dropping below it. The
   paper's trigger cannot fire while latency explodes; the latency-gradient
   trigger scales out on the p99 slope before the breach. *)
let e22_horizon ~quick = if quick then 360.0 else 720.0

let e22_reports ~quick =
  let horizon = e22_horizon ~quick in
  let scenario = serve_scenario ~name:"serve-flash" ~horizon () in
  let arrival = Arrival.flash_crowd ~base:1.8 ~peak:6.0 ~at:120.0 ~ramp:20.0 ~decay:60.0 in
  reports ~scenario ~arrival ~provision_rate:1.8

let run_e22 ~quick =
  print_table
    ~title:
      (Printf.sprintf
         "E22: flash crowd (base 1.8 items/s, peak 6.0 at t=120 s, horizon %.0f s; saturation \
          hides the surge from the divergence trigger)"
         (e22_horizon ~quick))
    (e22_reports ~quick)

(* ------------------------------------------------------------------ E23 *)

(* Trace replay: one MMPP draw is materialized once and replayed verbatim
   against every autoscaler, so the rows differ only by policy — and a
   replayed trace is bit-reproducible, which the serving test suite pins
   down by running a row twice. *)
let e23_horizon ~quick = if quick then 480.0 else 960.0

let e23_trace ~quick =
  let burst = Arrival.mmpp ~rates:[| 1.2; 4.0 |] ~mean_holding:[| 80.0; 40.0 |] in
  Arrival.times ~until:(e23_horizon ~quick) ~rng:(Rng.create (seed lxor 0x5EED)) burst

let e23_reports ~quick =
  let horizon = e23_horizon ~quick in
  let scenario = serve_scenario ~name:"serve-replay" ~horizon () in
  let arrival = Arrival.replay (e23_trace ~quick) in
  reports ~scenario ~arrival ~provision_rate:1.2

let run_e23 ~quick =
  let trace = e23_trace ~quick in
  print_table
    ~title:
      (Printf.sprintf
         "E23: recorded MMPP trace replayed verbatim (%d arrivals over %.0f s, bursty 1.2/4.0 \
          items/s states)"
         (Array.length trace) (e23_horizon ~quick))
    (e23_reports ~quick)

(* ------------------------------------------------------------------ E24 *)

(* Fault-overlaid serving: the node the cheap provisioning lives on blacks
   out mid-run. Failover (shared with the batch engine) re-hosts the
   pipeline; the autoscalers differ in how much latency damage the outage
   does before service is restored, and in what the detour costs. *)
let e24_horizon ~quick = if quick then 480.0 else 960.0

let e24_reports ~quick =
  let horizon = e24_horizon ~quick in
  let scenario =
    serve_scenario ~name:"serve-outage"
      ~faults:[ (0, Fault.Windows [ (150.0, 60.0) ]) ]
      ~horizon ()
  in
  let arrival = Arrival.poisson ~rate:2.0 in
  reports ~scenario ~arrival ~provision_rate:2.0

let run_e24 ~quick =
  let rows = e24_reports ~quick in
  let table =
    Render.Table.create
      ~title:
        "E24: node 0 (the provisioned host) down for t=[150,210) s under steady 2.0 items/s \
         demand; failover shared with the batch engine"
      ~columns:
        [ "autoscaler"; "arrivals"; "done"; "p99 (s)"; "SLO att."; "node-s"; "failovers"; "lost" ]
  in
  List.iter
    (fun (label, (r : Serve.report)) ->
      Render.Table.add_row table
        [
          label;
          string_of_int r.Serve.arrivals;
          string_of_int r.Serve.completions;
          fmt_s r.Serve.p99;
          fmt_pct r.Serve.attainment;
          Printf.sprintf "%.0f" r.Serve.node_seconds;
          string_of_int r.Serve.failover_count;
          string_of_int r.Serve.items_lost;
        ])
    rows;
  Render.Table.print table;
  Aspipe_util.Out.newline ()
