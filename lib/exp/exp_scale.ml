module Stage = Aspipe_skel.Stage
module Variate = Aspipe_util.Variate
module Rng = Aspipe_util.Rng
module Render = Aspipe_util.Render
module Mapping = Aspipe_model.Mapping
module Costspec = Aspipe_model.Costspec
module Analytic = Aspipe_model.Analytic
module Ctmc = Aspipe_model.Ctmc
module Search = Aspipe_model.Search
module Predictor = Aspipe_model.Predictor
module Scenario = Aspipe_core.Scenario
module Baselines = Aspipe_core.Baselines

let seed = 5

(* ------------------------------------------------------------------ E5 *)

type e5_point = {
  processors : int;
  compute_bound : float;
  comm_bound : float;
  ideal : float;
}

let e5_scenario ~quick ~processors ~output_bytes =
  let items = Common.scale ~quick 300 in
  let stages =
    Array.init 8 (fun i ->
        Stage.make ~name:(Printf.sprintf "sc%d" i) ~output_bytes ~work:(Variate.Constant 1.0) ())
  in
  Scenario.make
    ~name:(Printf.sprintf "scale-%d" processors)
    ~make_topo:(Common.uniform_grid ~n:processors ())
    ~stages
    ~input:(Common.batch_input ~items ())
    ()

let best_static_throughput ~quick ~processors ~output_bytes =
  let scenario = e5_scenario ~quick ~processors ~output_bytes in
  let outcome = Baselines.static_model_best ~scenario ~seed () in
  Common.steady_throughput outcome.Baselines.trace

let e5_points ~quick =
  Common.par_map
    (fun processors ->
      let ideal =
        10.0 /. Float.of_int (int_of_float (Float.ceil (8.0 /. Float.of_int processors)))
      in
      {
        processors;
        compute_bound = best_static_throughput ~quick ~processors ~output_bytes:1e4;
        comm_bound = best_static_throughput ~quick ~processors ~output_bytes:2e6;
        ideal;
      })
    [ 1; 2; 4; 6; 8; 12; 16; 24; 32 ]

let run_e5 ~quick =
  let points = e5_points ~quick in
  let series f = Array.of_list (List.map (fun p -> (Float.of_int p.processors, f p)) points) in
  Render.print_figure ~title:"E5: throughput scalability, 8-stage pipeline"
    ~x_label:"processors" ~y_label:"items/s"
    [
      Render.Series.make "compute-bound" (series (fun p -> p.compute_bound));
      Render.Series.make "comm-bound (2MB payloads)" (series (fun p -> p.comm_bound));
      Render.Series.make "ideal 10/ceil(8/Np)" (series (fun p -> p.ideal));
    ];
  Aspipe_util.Out.newline ()

(* ------------------------------------------------------------------ E6 *)

type e6_row = {
  stages : int;
  processors : int;
  space : int;
  exhaustive_ms : float;
  incr_ms : float;
  incr_scored : int;
  auto_ms : float;
  auto_evaluations : int;
  ctmc_states : int;
  ctmc_solve_ms : float;
}

let time_ms f =
  (* lint: wall-clock-ok E6 measures the real cost of the decision path *)
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (* lint: wall-clock-ok timing columns are labelled non-reproducible (see CI's drop_wallclock) *)
  (result, (Unix.gettimeofday () -. t0) *. 1000.0)

(* A synthetic cost spec: mildly heterogeneous so searches are non-trivial. *)
let synthetic_spec ~stages ~processors =
  let rng = Rng.create 17 in
  {
    Costspec.stage_work = Array.init stages (fun _ -> Rng.range rng 0.5 2.0);
    node_rates = Array.init processors (fun _ -> Rng.range rng 5.0 15.0);
    item_bytes = 1e4;
    output_bytes = Array.make stages 1e4;
    latency = Array.init processors (fun _ -> Array.make processors 0.01);
    bandwidth = Array.init processors (fun _ -> Array.make processors 1e7);
    user_latency = Array.make processors 0.01;
    user_bandwidth = Array.make processors 1e7;
  }

let e6_rows ~quick =
  let cases =
    if quick then [ (3, 3); (4, 4); (6, 6) ] else [ (3, 3); (4, 4); (6, 6); (8, 8); (8, 16) ]
  in
  List.map
    (fun (stages, processors) ->
      let spec = synthetic_spec ~stages ~processors in
      let evaluator m = Analytic.throughput spec m in
      let space =
        match Mapping.space_size ~stages ~processors with
        | Some n -> n
        | None -> max_int
      in
      let enumerable = space <= Mapping.max_enumeration in
      let exhaustive_ms =
        if enumerable then
          snd (time_ms (fun () -> Search.exhaustive_ref ~stages ~processors evaluator))
        else nan
      in
      (* The incremental branch-and-bound backend over the same space: the
         old-vs-new decision-cost gap E6 exists to show. *)
      let incr_ms, incr_scored =
        if enumerable then begin
          let r, ms = time_ms (fun () -> Search.exhaustive_spec spec) in
          (ms, r.Search.evaluated)
        end
        else (nan, 0)
      in
      let auto_result, auto_ms =
        time_ms (fun () -> Search.auto ~exhaustive_limit:2000 ~stages ~processors evaluator)
      in
      let ctmc_states = int_of_float (3.0 ** Float.of_int stages) in
      let mapping = Mapping.round_robin ~stages ~processors in
      let _, ctmc_solve_ms =
        time_ms (fun () -> Ctmc.throughput (Ctmc.of_costspec spec mapping))
      in
      {
        stages;
        processors;
        space;
        exhaustive_ms;
        incr_ms;
        incr_scored;
        auto_ms;
        auto_evaluations = auto_result.Search.evaluated;
        ctmc_states;
        ctmc_solve_ms;
      })
    cases

let run_e6 ~quick =
  let rows = e6_rows ~quick in
  let table =
    Render.Table.create ~title:"E6: cost of the mapping decision path"
      ~columns:
        [
          "Ns"; "Np"; "space"; "exhaustive (ms)"; "incr B&B (ms)"; "scored"; "greedy+hill (ms)";
          "evals"; "CTMC states"; "CTMC solve (ms)";
        ]
  in
  List.iter
    (fun r ->
      Render.Table.add_row table
        [
          string_of_int r.stages;
          string_of_int r.processors;
          string_of_int r.space;
          Printf.sprintf "%.2f" r.exhaustive_ms;
          Printf.sprintf "%.2f" r.incr_ms;
          string_of_int r.incr_scored;
          Printf.sprintf "%.2f" r.auto_ms;
          string_of_int r.auto_evaluations;
          string_of_int r.ctmc_states;
          Printf.sprintf "%.2f" r.ctmc_solve_ms;
        ])
    rows;
  Render.Table.print table;
  Aspipe_util.Out.newline ()
