module Stream_spec = Aspipe_skel.Stream_spec
module Loadgen = Aspipe_grid.Loadgen
module Render = Aspipe_util.Render
module Scenario = Aspipe_core.Scenario
module Adaptive = Aspipe_core.Adaptive
module Baselines = Aspipe_core.Baselines
module Synthetic = Aspipe_workload.Synthetic

type cell = {
  workload : string;
  strategy : string;
  mean_makespan : float;
  ci95 : float;
  mean_adaptations : float;
}

let workloads () =
  [
    ("balanced", Synthetic.balanced ~n:6 ());
    ("hot-stage x4", Synthetic.hot_stage ~n:6 ~factor:4.0 ());
    ("front-heavy", Synthetic.front_heavy ~n:6 ());
    ("noisy cv=0.75", Synthetic.noisy ~n:6 ~cv:0.75 ());
  ]

(* Dense enough dynamics that every run sees several load episodes: one node
   flaps between free and 25% on ~20 s holding times, another wanders. *)
let dynamic_loads =
  [
    (1, Loadgen.Markov_on_off { to_busy_rate = 1.0 /. 25.0; to_free_rate = 1.0 /. 20.0; busy_level = 0.25 });
    (2, Loadgen.Random_walk { every = 5.0; sigma = 0.15; lo = 0.3; hi = 1.0 });
  ]

let scenario ~quick ~name ~stages =
  let items = Common.scale ~quick 800 in
  Scenario.make ~name
    ~make_topo:(Common.uniform_grid ~n:4 ())
    ~loads:dynamic_loads ~stages
    (* Near the clean-grid capacity, so losing a node's worth of availability
       actually backs the pipeline up. *)
    ~input:(Stream_spec.make ~arrival:(Stream_spec.Spaced 0.25) ~item_bytes:1e4 ~items ())
    ~horizon:1e5 ()

type run_result = { makespan : float; adaptations : int }

let strategies =
  [
    ("static-rr", fun scenario seed ->
        let o = Baselines.static_round_robin ~scenario ~seed in
        { makespan = o.Baselines.makespan; adaptations = 0 });
    ("static-blocks", fun scenario seed ->
        let o = Baselines.static_blocks ~scenario ~seed in
        { makespan = o.Baselines.makespan; adaptations = 0 });
    ("static-model-best", fun scenario seed ->
        let o = Baselines.static_model_best ~scenario ~seed () in
        { makespan = o.Baselines.makespan; adaptations = 0 });
    ("adaptive", fun scenario seed ->
        let r = Adaptive.run ~scenario ~seed () in
        { makespan = r.Adaptive.makespan; adaptations = r.Adaptive.adaptation_count });
    ("clairvoyant", fun scenario seed ->
        let r = Baselines.clairvoyant ~scenario ~seed in
        { makespan = r.Adaptive.makespan; adaptations = r.Adaptive.adaptation_count });
  ]

let cells ~quick =
  let seeds = if quick then [ 11 ] else [ 11; 12; 13; 14; 15 ] in
  List.concat_map
    (fun (workload, stages) ->
      let scenario = scenario ~quick ~name:workload ~stages in
      List.map
        (fun (strategy, run) ->
          let results = Common.par_map (fun seed -> run scenario seed) seeds in
          let mean, ci = Common.mean_ci (List.map (fun r -> r.makespan) results) in
          let mean_adaptations =
            List.fold_left (fun acc r -> acc +. Float.of_int r.adaptations) 0.0 results
            /. Float.of_int (List.length results)
          in
          { workload; strategy; mean_makespan = mean; ci95 = ci; mean_adaptations })
        strategies)
    (workloads ())

let adaptive_vs ~cells ~workload ~strategy =
  let find s =
    match List.find_opt (fun c -> c.workload = workload && c.strategy = s) cells with
    | Some c -> c.mean_makespan
    | None -> invalid_arg "Exp_campaign.adaptive_vs: unknown cell"
  in
  find strategy /. find "adaptive"

let run_e11 ~quick =
  let all = cells ~quick in
  let table =
    Render.Table.create
      ~title:"E11: campaign on a dynamic 4-node grid (makespan, mean ± 95% CI over seeds)"
      ~columns:[ "workload"; "strategy"; "makespan (s)"; "± CI"; "mean migrations"; "vs adaptive" ]
  in
  List.iter
    (fun c ->
      Render.Table.add_row table
        [
          c.workload;
          c.strategy;
          Printf.sprintf "%.1f" c.mean_makespan;
          Printf.sprintf "%.1f" c.ci95;
          Printf.sprintf "%.1f" c.mean_adaptations;
          Printf.sprintf "%.3f" (adaptive_vs ~cells:all ~workload:c.workload ~strategy:c.strategy);
        ])
    all;
  Render.Table.print table;
  Aspipe_util.Out.newline ()
