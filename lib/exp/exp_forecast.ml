module Rng = Aspipe_util.Rng
module Variate = Aspipe_util.Variate
module Forecast = Aspipe_util.Forecast
module Render = Aspipe_util.Render

type row = { signal : string; per_forecaster : (string * float) list }

let clamp x = Float.min 1.0 (Float.max 0.0 x)

let signal_families ~quick =
  let n = if quick then 120 else 600 in
  let rng = Rng.create 9 in
  let step =
    Array.init n (fun i -> if i < n / 2 then 0.9 else 0.3)
  in
  let sine =
    Array.init n (fun i -> clamp (0.6 +. (0.3 *. sin (Float.of_int i /. 12.0))))
  in
  let walk =
    let level = ref 0.7 in
    Array.init n (fun _ ->
        level := clamp (!level +. Variate.normal rng ~mean:0.0 ~stddev:0.05);
        !level)
  in
  let onoff =
    let busy = ref false in
    Array.init n (fun _ ->
        if Rng.float rng < 0.08 then busy := not !busy;
        if !busy then 0.25 else 1.0)
  in
  let spiky =
    Array.init n (fun _ ->
        if Rng.float rng < 0.1 then clamp (1.0 -. Variate.pareto rng ~shape:2.0 ~scale:0.3)
        else 0.85)
  in
  let noisy_constant =
    Array.init n (fun _ -> clamp (0.75 +. Variate.normal rng ~mean:0.0 ~stddev:0.08))
  in
  [
    ("step", step); ("sine", sine); ("random walk", walk); ("on/off", onoff);
    ("pareto spikes", spiky); ("noisy constant", noisy_constant);
  ]

let forecaster_bank () =
  [
    Forecast.last_value ();
    Forecast.running_mean ();
    Forecast.sliding_mean ~window:10 ();
    Forecast.sliding_median ~window:10 ();
    Forecast.ewma ~gain:0.25 ();
    Forecast.adaptive ();
  ]

let rows ~quick =
  Common.par_map
    (fun (signal, values) ->
      let bank = forecaster_bank () in
      Array.iter (fun v -> List.iter (fun f -> Forecast.observe f v) bank) values;
      { signal; per_forecaster = List.map (fun f -> (Forecast.name f, Forecast.mae f)) bank })
    (signal_families ~quick)

let ensemble_regret row =
  let adaptive =
    List.assoc "adaptive" row.per_forecaster
  in
  let best_primitive =
    List.fold_left
      (fun acc (name, mae) -> if name = "adaptive" then acc else Float.min acc mae)
      infinity row.per_forecaster
  in
  adaptive -. best_primitive

let run_e9 ~quick =
  let all = rows ~quick in
  let names = List.map fst (List.hd all).per_forecaster in
  let table =
    Render.Table.create ~title:"E9: forecaster MAE per availability-signal family"
      ~columns:("signal" :: names @ [ "ensemble regret" ])
  in
  List.iter
    (fun r ->
      Render.Table.add_row table
        (r.signal
         :: List.map (fun (_, mae) -> Printf.sprintf "%.4f" mae) r.per_forecaster
        @ [ Printf.sprintf "%.4f" (ensemble_regret r) ]))
    all;
  Render.Table.print table;
  Aspipe_util.Out.newline ()
