(** E5 and E6: how the pattern and its decision path scale.

    E5 (figure): simulated throughput of an 8-stage pipeline as the grid
    grows from 1 to 32 processors, compute-bound and communication-bound
    variants, against the ideal staircase 10 / ⌈8/Np⌉.

    E6 (table): wall-clock cost of the mapping decision itself — exhaustive
    vs greedy+hill-climb search under the analytic evaluator, and CTMC
    solve cost per state-space size. The adaptation loop is only viable if
    this stays far below the monitoring interval. *)

type e5_point = {
  processors : int;
  compute_bound : float;
  comm_bound : float;
  ideal : float;
}

val e5_points : quick:bool -> e5_point list
val run_e5 : quick:bool -> unit

type e6_row = {
  stages : int;
  processors : int;
  space : int;  (** candidate mappings for exhaustive search *)
  exhaustive_ms : float;  (** full-evaluator walk over the materialized list *)
  incr_ms : float;  (** incremental branch-and-bound ({!Aspipe_model.Search.exhaustive_spec}) *)
  incr_scored : int;  (** leaves actually scored after pruning/canonicalization *)
  auto_ms : float;
  auto_evaluations : int;
  ctmc_states : int;
  ctmc_solve_ms : float;
}

val e6_rows : quick:bool -> e6_row list
val run_e6 : quick:bool -> unit
