module Stage = Aspipe_skel.Stage
module Stream_spec = Aspipe_skel.Stream_spec
module Farm_sim = Aspipe_skel.Farm_sim
module Variate = Aspipe_util.Variate
module Rng = Aspipe_util.Rng
module Render = Aspipe_util.Render
module Trace = Aspipe_grid.Trace
module Loadgen = Aspipe_grid.Loadgen
module Farm_model = Aspipe_model.Farm_model
module Scenario = Aspipe_core.Scenario
module Adaptive_farm = Aspipe_core.Adaptive_farm

let seed = 12
let speeds = [| 14.0; 12.0; 10.0; 10.0; 8.0; 6.0 |]

let task () =
  Stage.make ~name:"farm-task" ~output_bytes:1e4 ~state_bytes:0.0
    ~work:(Variate.Constant 1.0) ()

let farm_scenario ~quick ~loads ~spacing ~items =
  let items = Common.scale ~quick items in
  Scenario.make ~name:"farm"
    ~make_topo:(Common.heterogeneous_grid ~speeds ())
    ~loads
    ~stages:[| task () |]
    ~input:(Stream_spec.make ~arrival:(Stream_spec.Spaced spacing) ~item_bytes:1e4 ~items ())
    ~horizon:1e5 ()

(* ------------------------------------------------------------------ E12a *)

type dispatch_row = {
  label : string;
  workers : int list;
  predicted : float;
  measured : float;
}

let dispatch_rows ~quick =
  (* Saturated farm (all items at t=0) on the static heterogeneous grid. *)
  let items = Common.scale ~quick 2000 in
  let scenario =
    Scenario.make ~name:"farm-static"
      ~make_topo:(Common.heterogeneous_grid ~speeds ())
      ~stages:[| task () |]
      ~input:(Common.batch_input ~item_bytes:1e4 ~items ())
      ()
  in
  let model = Farm_model.make ~work:1.0 ~node_rates:speeds in
  let all = List.init (Array.length speeds) Fun.id in
  let best_set, best_predicted = Farm_model.best_round_robin_set model ~candidates:all in
  let measure ~workers ~dispatch =
    let topo = Scenario.build scenario ~rng:(Rng.create seed) in
    let trace =
      Farm_sim.execute ~rng:(Rng.create (seed + 1)) ~topo ~task:(task ()) ~workers ~dispatch
        ~input:scenario.Scenario.input ()
    in
    Common.steady_throughput trace
  in
  [
    {
      label = "round-robin, all workers";
      workers = all;
      predicted = Farm_model.round_robin_throughput model ~workers:all;
      measured = measure ~workers:all ~dispatch:Farm_sim.Round_robin;
    };
    {
      label = "round-robin, model-best subset";
      workers = best_set;
      predicted = best_predicted;
      measured = measure ~workers:best_set ~dispatch:Farm_sim.Round_robin;
    };
    {
      label = "least-loaded, all workers";
      workers = all;
      predicted = Farm_model.proportional_throughput model ~workers:all;
      measured = measure ~workers:all ~dispatch:Farm_sim.Least_loaded;
    };
  ]

(* ------------------------------------------------------------------ E12b *)

type adapt_result = {
  label : string;
  series : (float * float) array;
  makespan : float;
  reconfigurations : int;
}

let adapt_results ~quick =
  let items = 3000 in
  let spacing = 0.05 (* 20 items/s offered; clean capacity comfortably above *) in
  let step_at = spacing *. Float.of_int (Common.scale ~quick items) *. 0.35 in
  let loads = [ (1, Loadgen.Step { at = step_at; level = 0.15 }) ] in
  let scenario = farm_scenario ~quick ~loads ~spacing ~items in
  let window = 15.0 in
  let static_config = { Adaptive_farm.default_config with adapt = false } in
  let static = Adaptive_farm.run ~config:static_config ~scenario ~seed () in
  let adaptive = Adaptive_farm.run ~scenario ~seed () in
  let least_loaded_config =
    { Adaptive_farm.default_config with dispatch = Farm_sim.Least_loaded; adapt = false }
  in
  let least_loaded = Adaptive_farm.run ~config:least_loaded_config ~scenario ~seed () in
  List.map
    (fun (label, r) ->
      {
        label;
        series = Trace.throughput_series r.Adaptive_farm.trace ~window;
        makespan = r.Adaptive_farm.makespan;
        reconfigurations = r.Adaptive_farm.reconfigurations;
      })
    [
      ("static round-robin deal", static);
      ("adaptive round-robin deal", adaptive);
      ("least-loaded (static set)", least_loaded);
    ]

let run_e12 ~quick =
  let rows = dispatch_rows ~quick in
  let table =
    Render.Table.create
      ~title:"E12a: farm dispatch on a static heterogeneous grid (items/s)"
      ~columns:[ "strategy"; "workers"; "predicted"; "measured"; "meas/pred" ]
  in
  List.iter
    (fun (r : dispatch_row) ->
      Render.Table.add_row table
        [
          r.label;
          "{" ^ String.concat "," (List.map string_of_int r.workers) ^ "}";
          Printf.sprintf "%.2f" r.predicted;
          Printf.sprintf "%.2f" r.measured;
          Printf.sprintf "%.3f" (r.measured /. r.predicted);
        ])
    rows;
  Render.Table.print table;
  let results = adapt_results ~quick in
  Render.print_figure
    ~title:"E12b: farm throughput timeline, worker 1 collapses mid-run"
    ~x_label:"time (s)" ~y_label:"items/s"
    (List.map (fun r -> Render.Series.make r.label r.series) results);
  List.iter
    (fun r ->
      Aspipe_util.Out.printf "%-28s makespan %8.1f s, %d reconfiguration(s)\n" r.label r.makespan
        r.reconfigurations)
    results;
  Aspipe_util.Out.newline ()
