module Rng = Aspipe_util.Rng
module Render = Aspipe_util.Render
module Pipe = Aspipe_skel.Pipe
module Skel_mc = Aspipe_skel.Skel_mc
module Farm_mc = Aspipe_skel.Farm_mc
module Mapping = Aspipe_model.Mapping
module Image = Aspipe_workload.Image

type point = { groups : int; seconds : float; speedup : float }

let frames ~quick =
  let rng = Rng.create 10 in
  let count = if quick then 8 else 24 in
  let side = if quick then 96 else 192 in
  List.init count (fun _ -> Image.random rng ~width:side ~height:side)

let checksum_all images =
  List.fold_left (fun acc img -> acc +. Image.checksum img) 0.0 images

(* Always sweep 1..5 groups: on a many-core host the curve shows speedup, on
   a constrained container it shows the coordination overhead instead; either
   way the measurement is honest and the outputs are verified. *)
let group_counts ~quick = if quick then [ 1; 2 ] else [ 1; 2; 3; 4; 5 ]

let pipeline_points ~quick =
  let chain = Image.standard_chain ~blur_radius:3 in
  let inputs = frames ~quick in
  let reference, seq_seconds = Skel_mc.run_seq_timed chain inputs in
  let reference_sum = checksum_all reference in
  List.map
    (fun groups ->
      let group_array = Mapping.to_array (Mapping.blocks ~stages:5 ~processors:groups) in
      let t0 = Unix.gettimeofday () in
      let outputs = Skel_mc.run_grouped ~groups:group_array chain inputs in
      let seconds = Unix.gettimeofday () -. t0 in
      let sum = checksum_all outputs in
      if Float.abs (sum -. reference_sum) > 1e-6 *. Float.max 1.0 (Float.abs reference_sum) then
        failwith "exp_mc: parallel pipeline output differs from sequential reference";
      { groups; seconds; speedup = seq_seconds /. seconds })
    (group_counts ~quick)

type farm_point = { workers : int; seconds : float; speedup : float }

let farm_points ~quick =
  let inputs = frames ~quick in
  let work img = Image.sobel (Image.gaussian_blur ~radius:3 img) in
  let reference, seq_seconds =
    let t0 = Unix.gettimeofday () in
    let r = List.map work inputs in
    (r, Unix.gettimeofday () -. t0)
  in
  let reference_sum = checksum_all reference in
  let worker_counts = if quick then [ 1; 2 ] else [ 1; 2; 4 ] in
  List.map
    (fun workers ->
      let t0 = Unix.gettimeofday () in
      let outputs = Farm_mc.map ~workers work inputs in
      let seconds = Unix.gettimeofday () -. t0 in
      if Float.abs (checksum_all outputs -. reference_sum)
         > 1e-6 *. Float.max 1.0 (Float.abs reference_sum)
      then failwith "exp_mc: farm output differs from sequential reference";
      { workers; seconds; speedup = seq_seconds /. seconds })
    worker_counts

let run_e10 ~quick =
  let points = pipeline_points ~quick in
  Render.print_figure ~title:"E10: shared-memory pipeline speedup (image chain, 5 stages)"
    ~x_label:"domain groups" ~y_label:"speedup vs sequential"
    [
      Render.Series.make "pipeline"
        (Array.of_list (List.map (fun p -> (Float.of_int p.groups, p.speedup)) points));
    ];
  List.iter
    (fun p -> Aspipe_util.Out.printf "groups=%d: %.3f s (speedup %.2fx)\n" p.groups p.seconds p.speedup)
    points;
  let farm = farm_points ~quick in
  Render.print_figure ~title:"E10b: farm (stage replication) speedup"
    ~x_label:"workers" ~y_label:"speedup vs sequential"
    [
      Render.Series.make "farm"
        (Array.of_list (List.map (fun p -> (Float.of_int p.workers, p.speedup)) farm));
    ];
  List.iter
    (fun p -> Aspipe_util.Out.printf "workers=%d: %.3f s (speedup %.2fx)\n" p.workers p.seconds p.speedup)
    farm;
  Aspipe_util.Out.newline ()
