type handle = { mutable dead : bool }

(* An indexed 4-ary min-heap. The heap order lives in two flat arrays —
   [heap_keys] (unboxed floats) and [heap_slots] (ints naming a payload
   slot) — so every sift move is a pair of scalar array writes: no pointer
   chase to compare keys, no float box per entry, and crucially no GC
   write barrier, because the pointer-valued payload ([vals], [handles])
   never moves once parked in its slot. Slots are recycled through a free
   list chained through [seqs] (a freed slot's seq is never read again).

   The 4-ary shape halves the tree depth of a binary heap and puts all
   four children of a node in one cache line of [heap_keys], which is
   where sift-down — the hot operation of the event loop — spends its
   time.

   The only allocation on the insert/pop path is the [handle] record,
   which must be a stand-alone mutable cell because it escapes to the
   caller (cancellation does not hold the queue). *)
type 'a t = {
  mutable heap_keys : float array;
  mutable heap_slots : int array;
  mutable seqs : int array;  (* per-slot seq; repurposed as next-free link *)
  mutable vals : 'a array;  (* per-slot value *)
  mutable handles : handle array;  (* per-slot handle *)
  mutable used : int;
  mutable live : int;
  mutable next_seq : int;
  mutable free_head : int;  (* head of the free-slot list; -1 when full *)
  mutable last_slot : int;  (* slot of the entry removed by the last pop *)
}

let create () =
  {
    heap_keys = [||];
    heap_slots = [||];
    seqs = [||];
    vals = [||];
    handles = [||];
    used = 0;
    live = 0;
    next_seq = 0;
    free_head = -1;
    last_slot = -1;
  }

(* Double the capacity with one [Array.make] + [Array.blit] per array — no
   throwaway intermediate like the old [Array.append] growth. The fresh
   slots are filled with the entry being inserted, so no dummy element is
   ever needed, and they are chained onto the free list. *)
let grow q value handle =
  let cap = Array.length q.heap_keys in
  let ncap = if cap = 0 then 16 else 2 * cap in
  let heap_keys = Array.make ncap 0.0 in
  Array.blit q.heap_keys 0 heap_keys 0 cap;
  let heap_slots = Array.make ncap 0 in
  Array.blit q.heap_slots 0 heap_slots 0 cap;
  let seqs = Array.make ncap 0 in
  Array.blit q.seqs 0 seqs 0 cap;
  let vals = Array.make ncap value in
  Array.blit q.vals 0 vals 0 cap;
  let handles = Array.make ncap handle in
  Array.blit q.handles 0 handles 0 cap;
  for slot = cap to ncap - 2 do
    seqs.(slot) <- slot + 1
  done;
  seqs.(ncap - 1) <- q.free_head;
  q.free_head <- cap;
  q.heap_keys <- heap_keys;
  q.heap_slots <- heap_slots;
  q.seqs <- seqs;
  q.vals <- vals;
  q.handles <- handles

(* The sift loops use [Array.unsafe_get]/[unsafe_set]: every heap index is
   [< q.used <= Array.length] by the heap invariant (or a parent index
   [(i-1)/4] of one) and every slot index was issued by the free list, so
   the elided bounds checks can never fire. *)

(* Bubble the entry at [i] up to its final position; [seq] and [slot] ride
   in registers for tie-breaks and the final store. The entry's key is read
   out of [heap_keys.(i)] rather than passed as an argument: a float
   parameter would be boxed at this (non-inlined) call boundary, whereas
   the flat-array store the caller just did is free. *)
let sift_up q i seq slot =
  let heap_keys = q.heap_keys and heap_slots = q.heap_slots and seqs = q.seqs in
  let key = Array.unsafe_get heap_keys i in
  let i = ref i in
  let climbing = ref true in
  while !climbing && !i > 0 do
    let parent = (!i - 1) / 4 in
    let pk = Array.unsafe_get heap_keys parent in
    if
      key < pk
      || (key = pk && seq < Array.unsafe_get seqs (Array.unsafe_get heap_slots parent))
    then begin
      Array.unsafe_set heap_keys !i pk;
      Array.unsafe_set heap_slots !i (Array.unsafe_get heap_slots parent);
      i := parent
    end
    else climbing := false
  done;
  Array.unsafe_set heap_keys !i key;
  Array.unsafe_set heap_slots !i slot

(* Floyd's bottom-up sift for a heap of [used] entries whose root is a
   hole: walk the hole down to a leaf promoting the minimum child at each
   level — no comparison against the displaced entry, so the one badly
   predicted branch of the classic sift-down disappears — and return the
   hole's final index. The displaced entry (which came from the leaf level
   and almost always belongs back there) is then bubbled up with
   {!sift_up}, which usually stops after a single comparison. *)
let sift_hole_down q used =
  let heap_keys = q.heap_keys and heap_slots = q.heap_slots and seqs = q.seqs in
  let i = ref 0 in
  let descending = ref true in
  while !descending do
    let first = (4 * !i) + 1 in
    if first >= used then descending := false
    else begin
      (* Minimum of the (up to four) children, key then seq. *)
      let last = first + 3 in
      let last = if last < used then last else used - 1 in
      let smallest = ref first in
      let sk = ref (Array.unsafe_get heap_keys first) in
      for c = first + 1 to last do
        let ck = Array.unsafe_get heap_keys c in
        if
          ck < !sk
          || (ck = !sk
             && Array.unsafe_get seqs (Array.unsafe_get heap_slots c)
                < Array.unsafe_get seqs (Array.unsafe_get heap_slots !smallest))
        then begin
          smallest := c;
          sk := ck
        end
      done;
      let smallest = !smallest in
      Array.unsafe_set heap_keys !i !sk;
      Array.unsafe_set heap_slots !i (Array.unsafe_get heap_slots smallest);
      i := smallest
    end
  done;
  !i

let[@inline] insert q key value =
  let handle = { dead = false } in
  let seq = q.next_seq in
  q.next_seq <- seq + 1;
  if q.used = Array.length q.heap_keys then grow q value handle;
  let slot = q.free_head in
  q.free_head <- q.seqs.(slot);
  q.seqs.(slot) <- seq;
  q.vals.(slot) <- value;
  q.handles.(slot) <- handle;
  q.heap_keys.(q.used) <- key;
  sift_up q q.used seq slot;
  q.used <- q.used + 1;
  q.live <- q.live + 1;
  handle

let cancel h = h.dead <- true

let cancelled h = h.dead

(* Remove the root, restore the heap property, free its slot, and remember
   it in [last_slot] — so a popped entry can be read back through
   {!popped_key}/{!popped_value} without allocating a result cell. The
   freed slot's value survives untouched until a later insert reuses it,
   so the read-back stays valid until the next queue operation. *)
let extract_root q =
  let slot = q.heap_slots.(0) in
  let key = q.heap_keys.(0) in
  let used = q.used - 1 in
  q.used <- used;
  if used > 0 then begin
    let hole = sift_hole_down q used in
    let ms = q.heap_slots.(used) in
    q.heap_keys.(hole) <- q.heap_keys.(used);
    sift_up q hole q.seqs.(ms) ms
  end;
  q.heap_keys.(used) <- key;
  q.last_slot <- slot;
  q.seqs.(slot) <- q.free_head;
  q.free_head <- slot

let pop_min q ~horizon =
  (* Lazy deletion: cancelled roots are physically removed whenever they
     surface, horizon or not — exactly what [peek_key] used to do. *)
  while q.used > 0 && q.handles.(q.heap_slots.(0)).dead do
    extract_root q
  done;
  if q.used = 0 || q.heap_keys.(0) > horizon then false
  else begin
    q.live <- q.live - 1;
    extract_root q;
    true
  end

let[@inline] popped_key q = q.heap_keys.(q.used)
let[@inline] popped_value q = q.vals.(q.last_slot)

let pop_if q ~horizon =
  if pop_min q ~horizon then Some (popped_key q, popped_value q) else None

let pop q = pop_if q ~horizon:infinity

let rec peek_key q =
  if q.used = 0 then None
  else if q.handles.(q.heap_slots.(0)).dead then begin
    extract_root q;
    peek_key q
  end
  else Some q.heap_keys.(0)

let size q =
  (* [live] counts cancellations immediately, including entries still
     physically present in the array. *)
  let count = ref 0 in
  for i = 0 to q.used - 1 do
    if not q.handles.(q.heap_slots.(i)).dead then incr count
  done;
  q.live <- !count;
  !count

let is_empty q = size q = 0
