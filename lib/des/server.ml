type job = {
  tag : int;
  on_start : unit -> unit;
  on_complete : unit -> unit;
  mutable remaining : float;
}

type t = {
  engine : Engine.t;
  name : string;
  rate : Signal.t;
  waiting : job Queue.t;
  mutable current : job option;
  mutable last_update : float;
  mutable completion : Engine.handle option;
  mutable completed : int;
  mutable busy_time : float;
  mutable busy_since : float;
}

let name t = t.name

(* Fold the service progress made since [last_update] (at rate [rate]) into
   the in-flight job's remaining work. *)
let sync t ~rate =
  (match t.current with
  | Some job ->
      let elapsed = Engine.now t.engine -. t.last_update in
      job.remaining <- Float.max 0.0 (job.remaining -. (rate *. elapsed))
  | None -> ());
  t.last_update <- Engine.now t.engine

let cancel_completion t =
  match t.completion with
  | Some h ->
      Engine.cancel h;
      t.completion <- None
  | None -> ()

let rec reschedule t =
  cancel_completion t;
  match t.current with
  | None -> ()
  | Some job ->
      let rate = Signal.get t.rate in
      if rate > 0.0 then begin
        let delay = job.remaining /. rate in
        t.completion <- Some (Engine.schedule t.engine ~delay (fun () -> complete t))
      end
(* rate = 0: stalled; the rate subscription will reschedule when it rises. *)

and complete t =
  match t.current with
  | None -> ()
  | Some job ->
      t.completion <- None;
      t.current <- None;
      t.completed <- t.completed + 1;
      t.busy_time <- t.busy_time +. (Engine.now t.engine -. t.busy_since);
      t.last_update <- Engine.now t.engine;
      job.on_complete ();
      start_next t

and start_next t =
  if t.current = None && not (Queue.is_empty t.waiting) then begin
    let job = Queue.pop t.waiting in
    t.current <- Some job;
    t.busy_since <- Engine.now t.engine;
    t.last_update <- Engine.now t.engine;
    job.on_start ();
    reschedule t
  end

let create engine ~name ~rate =
  let t =
    {
      engine;
      name;
      rate;
      waiting = Queue.create ();
      current = None;
      last_update = Engine.now engine;
      completion = None;
      completed = 0;
      busy_time = 0.0;
      busy_since = 0.0;
    }
  in
  Signal.subscribe rate (fun ~old_value ~new_value:_ ->
      sync t ~rate:old_value;
      reschedule t);
  t

let submit t ~work ?(tag = 0) ?(on_start = fun () -> ()) on_complete =
  if not (Float.is_finite work) || work < 0.0 then
    invalid_arg "Server.submit: work must be finite and non-negative";
  Queue.push { tag; on_start; on_complete; remaining = work } t.waiting;
  start_next t

let drop_all t =
  cancel_completion t;
  let dropped = ref [] in
  (match t.current with
  | Some job ->
      (* Close the busy interval the aborted job opened; its callbacks never
         fire — the caller owns whatever recovery the drop implies. *)
      t.busy_time <- t.busy_time +. (Engine.now t.engine -. t.busy_since);
      t.current <- None;
      dropped := [ job.tag ]
  | None -> ());
  t.last_update <- Engine.now t.engine;
  Queue.iter (fun job -> dropped := job.tag :: !dropped) t.waiting;
  Queue.clear t.waiting;
  List.rev !dropped

let queue_length t = Queue.length t.waiting
let busy t = t.current <> None
let completed t = t.completed

let in_service_remaining t =
  match t.current with
  | None -> 0.0
  | Some job ->
      let elapsed = Engine.now t.engine -. t.last_update in
      Float.max 0.0 (job.remaining -. (Signal.get t.rate *. elapsed))

let utilization t =
  let now = Engine.now t.engine in
  if now <= 0.0 then 0.0
  else begin
    let live = if busy t then now -. t.busy_since else 0.0 in
    (t.busy_time +. live) /. now
  end
