(** The discrete-event simulation engine.

    A single-threaded event loop over a virtual clock. All grid components
    (nodes, links, load generators, monitors, the adaptive engine itself)
    schedule callbacks here; the loop fires them in timestamp order, ties
    broken by scheduling order, so runs are fully deterministic. *)

type t

type handle
(** Identifies a scheduled event so it can be cancelled. *)

val create : unit -> t

val now : t -> float
(** Current virtual time, in seconds; starts at 0. *)

val bus : t -> Aspipe_obs.Bus.t
(** The engine's telemetry bus. Its clock is this engine's virtual clock,
    so any component holding the engine can emit correctly stamped
    structured events, and any observer can subscribe sinks before a run
    starts. *)

val schedule : t -> delay:float -> (unit -> unit) -> handle
(** [schedule t ~delay f] fires [f] at [now t +. delay].
    Raises [Invalid_argument] if [delay < 0] or is not finite. *)

val schedule_at : t -> time:float -> (unit -> unit) -> handle
(** [schedule_at t ~time f] fires [f] at absolute [time] (must be ≥ [now t]). *)

val cancel : handle -> unit
(** Cancel a pending event; firing a cancelled handle is a no-op.
    Idempotent, and safe on already-fired events. *)

val step : t -> bool
(** Fire the next event; [false] if none remain. *)

val run : ?until:float -> t -> unit
(** [run t] drains the event queue. With [~until], stops once the next event
    is strictly later than [until] and advances the clock to [until]. *)

val events_fired : t -> int
val pending : t -> int

val periodic : t -> ?start:float -> every:float -> (unit -> bool) -> unit
(** [periodic t ~every f] fires [f] at [start] (default [now + every]) and
    then every [every] seconds for as long as [f] returns [true]. *)
