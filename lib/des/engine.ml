type t = {
  queue : (unit -> unit) Pqueue.t;
  mutable clock : float;
  mutable fired : int;
  bus : Aspipe_obs.Bus.t;
}

type handle = Pqueue.handle

let create () =
  let t = { queue = Pqueue.create (); clock = 0.0; fired = 0; bus = Aspipe_obs.Bus.create () } in
  Aspipe_obs.Bus.set_clock t.bus (fun () -> t.clock);
  t

let now t = t.clock
let bus t = t.bus

let schedule_at t ~time f =
  if not (Float.is_finite time) then invalid_arg "Engine.schedule_at: non-finite time";
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  Pqueue.insert t.queue time f

let schedule t ~delay f =
  if not (Float.is_finite delay) || delay < 0.0 then
    invalid_arg "Engine.schedule: delay must be finite and non-negative";
  schedule_at t ~time:(t.clock +. delay) f

let cancel = Pqueue.cancel

let step t =
  match Pqueue.pop t.queue with
  | None -> false
  | Some (time, f) ->
      t.clock <- time;
      t.fired <- t.fired + 1;
      f ();
      true

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some horizon ->
      let rec loop () =
        match Pqueue.peek_key t.queue with
        | Some key when key <= horizon ->
            ignore (step t);
            loop ()
        | Some _ | None -> if t.clock < horizon then t.clock <- horizon
      in
      loop ()

let events_fired t = t.fired
let pending t = Pqueue.size t.queue

let periodic t ?start ~every f =
  if every <= 0.0 then invalid_arg "Engine.periodic: period must be positive";
  let first = match start with Some s -> s | None -> t.clock +. every in
  let rec tick () = if f () then ignore (schedule t ~delay:every tick) in
  ignore (schedule_at t ~time:first tick)
