type t = {
  queue : (unit -> unit) Pqueue.t;
  mutable clock : float;
  mutable fired : int;
  bus : Aspipe_obs.Bus.t;
}

let now t = t.clock

type handle = Pqueue.handle

let create () =
  let t = { queue = Pqueue.create (); clock = 0.0; fired = 0; bus = Aspipe_obs.Bus.create () } in
  Aspipe_obs.Bus.set_clock t.bus (fun () -> t.clock);
  t

let bus t = t.bus

let schedule_at t ~time f =
  if not (Float.is_finite time) then invalid_arg "Engine.schedule_at: non-finite time";
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  Pqueue.insert t.queue time f

let[@inline] schedule t ~delay f =
  if not (Float.is_finite delay) || delay < 0.0 then
    invalid_arg "Engine.schedule: delay must be finite and non-negative";
  (* A finite non-negative delay added to a finite clock passes the
     [schedule_at] validation by construction — insert directly. *)
  Pqueue.insert t.queue (t.clock +. delay) f

let cancel = Pqueue.cancel

(* The event loop body: pop (allocation-free) and fire. [pop_min] fuses the
   old peek+pop pair into one heap traversal, and the popped entry is read
   back through [popped_key]/[popped_value] before the callback can touch
   the queue. *)
let[@inline] fire t =
  t.clock <- Pqueue.popped_key t.queue;
  let f = Pqueue.popped_value t.queue in
  t.fired <- t.fired + 1;
  f ()

let step t =
  if Pqueue.pop_min t.queue ~horizon:infinity then begin
    fire t;
    true
  end
  else false

let run ?until t =
  match until with
  | None -> while Pqueue.pop_min t.queue ~horizon:infinity do fire t done
  | Some horizon ->
      while Pqueue.pop_min t.queue ~horizon do fire t done;
      if t.clock < horizon then t.clock <- horizon

let events_fired t = t.fired
let pending t = Pqueue.size t.queue

let periodic t ?start ~every f =
  if every <= 0.0 then invalid_arg "Engine.periodic: period must be positive";
  let first = match start with Some s -> s | None -> t.clock +. every in
  let rec tick () = if f () then ignore (schedule t ~delay:every tick) in
  ignore (schedule_at t ~time:first tick)
