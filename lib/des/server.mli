(** A rate-modulated, FCFS, single-capacity server.

    This models one grid processor: jobs carry an amount of abstract work and
    are served one at a time in arrival order; the instantaneous service rate
    (work units per second) is a {!Signal.t}, so when background load changes
    mid-service the completion time of the in-flight job is re-derived from
    its remaining work — service progress integrates the piecewise-constant
    rate signal exactly. A rate of zero stalls the server (the job stays,
    no completion event is pending) until the rate becomes positive again. *)

type t

val create : Engine.t -> name:string -> rate:Signal.t -> t
(** The server subscribes to [rate]; the signal may be shared. *)

val name : t -> string

val submit :
  t -> work:float -> ?tag:int -> ?on_start:(unit -> unit) -> (unit -> unit) -> unit
(** [submit t ~work k] enqueues a job of [work] units; [k] runs at the
    simulated instant the job completes, and [on_start] (if given) at the
    instant the job enters service. Raises [Invalid_argument] if
    [work < 0] or not finite. *)

val queue_length : t -> int
(** Jobs waiting, excluding the one in service. *)

val drop_all : t -> int list
(** Abort the in-service job and discard every waiting job without running
    any of their callbacks — the processor crashed. Returns the tags of the
    dropped jobs, in-service first then queue order. The server is left
    idle and usable (a later {!submit} starts normally). *)

val busy : t -> bool
val completed : t -> int

val in_service_remaining : t -> float
(** Remaining work of the job in service as of the current instant
    (0 when idle). *)

val utilization : t -> float
(** Fraction of elapsed simulation time this server spent with a job in
    service (including stalled intervals); [0] at time 0. *)
