(** Priority queue of timestamped entries with O(log n) insert/pop and O(1)
    cancellation (lazy deletion), the core data structure of the event loop.

    Ties on the key are broken by insertion order, so the simulation is
    deterministic: two events scheduled for the same instant fire in the
    order they were scheduled.

    The heap stores keys in a flat [float array] (unboxed) with parallel
    payload arrays, so the hot pop/insert path performs no allocation
    beyond the returned {!handle}. *)

type 'a t

type handle
(** A token identifying an inserted entry; used to cancel it. *)

val create : unit -> 'a t

val insert : 'a t -> float -> 'a -> handle
(** [insert q key v] adds [v] with priority [key] (smaller pops first). *)

val cancel : handle -> unit
(** [cancel h] removes the entry lazily; idempotent. *)

val cancelled : handle -> bool

val pop : 'a t -> (float * 'a) option
(** [pop q] removes and returns the minimum live entry, or [None] if empty. *)

val pop_if : 'a t -> horizon:float -> (float * 'a) option
(** [pop_if q ~horizon] removes and returns the minimum live entry iff its
    key is [<= horizon] — the fused form of [peek_key] + [pop], one heap
    traversal instead of two. Cancelled entries surfacing at the root are
    physically removed even when they lie beyond the horizon. *)

val pop_min : 'a t -> horizon:float -> bool
(** Allocation-free [pop_if]: [pop_min q ~horizon] pops the minimum live
    entry if its key is [<= horizon] and returns [true]; the popped entry is
    then readable through {!popped_key} and {!popped_value} until the next
    operation on [q]. Returns [false] (and pops nothing live) when the queue
    is empty or the next live key is past the horizon. *)

val popped_key : 'a t -> float
(** Key of the entry removed by the last successful {!pop_min}. Unspecified
    if the last [pop_min] returned [false] or [q] was touched since. *)

val popped_value : 'a t -> 'a
(** Value of the entry removed by the last successful {!pop_min}; same
    validity window as {!popped_key}. *)

val peek_key : 'a t -> float option
(** Key of the next live entry without removing it. *)

val size : 'a t -> int
(** Number of live (non-cancelled) entries. *)

val is_empty : 'a t -> bool
