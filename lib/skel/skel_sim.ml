module Engine = Aspipe_des.Engine
module Server = Aspipe_des.Server
module Rng = Aspipe_util.Rng
module Variate = Aspipe_util.Variate
module Topology = Aspipe_grid.Topology
module Node = Aspipe_grid.Node
module Link = Aspipe_grid.Link
module Trace = Aspipe_grid.Trace
module Bus = Aspipe_obs.Bus
module Event = Aspipe_obs.Event
module Ring = Aspipe_util.Ring

type stage_state = {
  spec : Stage.t;
  index : int;
  mutable node : int;
  pending : int Ring.t;  (* item ids awaiting this stage, FIFO *)
  waiting_deliveries : (unit -> unit) Ring.t;
      (* deliveries parked because [pending] hit the buffer capacity *)
  mutable busy : bool;  (* an item of this stage is submitted to a server *)
  mutable in_service : int option;
      (* the submitted item, until its service finishes; [busy] with
         [in_service = None] means the output move is in flight *)
  mutable migrating_to : int option;  (* destination of an in-flight migration *)
  mutable lost : int list;
      (* items this stage had accepted (per-stage checkpoint) that died in a
         crash and await re-dispatch; unordered *)
  mutable replaying : bool;
      (* a checkpoint replay's bulk transfer is in flight: dispatch is held
         so the replayed items keep their FIFO place ahead of anything that
         queued after the crash *)
}

type t = {
  engine : Engine.t;
  bus : Bus.t;
  topo : Topology.t;
  rng : Rng.t;
  stages : stage_state array;
  work_table : (int * int, float) Hashtbl.t;
  work_seed : int;
  input : Stream_spec.t;
  queue_capacity : int option;  (* per-stage buffer bound; None = unbounded *)
  open_stream : bool;
      (* arrivals are injected by an external driver (the serving layer)
         rather than scheduled from [input] at creation; items_total tracks
         what has actually been injected *)
  arrival_stamps : (int, float) Hashtbl.t;
      (* item -> open-arrival instant, removed at completion; only populated
         in open-stream mode so closed runs keep their exact event stream *)
  on_completion : (item:int -> arrival:float -> unit) option;
  mutable injected : int;
  mutable completed : int;
  mutable lost_total : int;
  mutable redispatched_total : int;
}

let check_mapping topo stages mapping =
  if Array.length mapping <> Array.length stages then
    invalid_arg "Skel_sim: mapping length must equal stage count";
  Array.iter
    (fun node ->
      if node < 0 || node >= Topology.size topo then
        invalid_arg "Skel_sim: mapping names an unknown node")
    mapping

(* Work is drawn from a generator keyed on (item, stage) — not on dispatch
   order — so every item costs the same under any mapping, buffer capacity or
   adaptation schedule. Comparisons across strategies are therefore paired on
   an identical workload realization, and migrating a stage never re-rolls
   the work its queued items will cost. The same keying makes a re-dispatched
   item cost what its lost first attempt did. *)
let work_for t ~item ~stage =
  match Hashtbl.find_opt t.work_table (item, stage) with
  | Some w -> w
  | None ->
      let keyed = Rng.create (t.work_seed lxor (item * 0x9E3779) lxor (stage * 0x85EB51)) in
      let w = Float.max 0.0 (Variate.sample keyed t.stages.(stage).spec.Stage.work) in
      Hashtbl.add t.work_table (item, stage) w;
      w

let rec try_dispatch t si =
  let s = t.stages.(si) in
  if
    (not s.busy) && s.migrating_to = None && (not s.replaying)
    && Node.up (Topology.node t.topo s.node)
    && not (Ring.is_empty s.pending)
  then begin
    let item = Ring.pop s.pending in
    if Bus.active t.bus then
      Bus.emit t.bus (Event.Queue_sample { stage = si; depth = Ring.length s.pending });
    s.busy <- true;
    s.in_service <- Some item;
    (* A buffer slot opened: land one parked delivery. This must happen
       after [busy] is set, or the landed delivery's own dispatch attempt
       would start a second concurrent service on this stage. *)
    if not (Ring.is_empty s.waiting_deliveries) then (Ring.pop s.waiting_deliveries) ();
    let node_idx = s.node in
    let node = Topology.node t.topo node_idx in
    let start = ref (Engine.now t.engine) in
    let work = work_for t ~item ~stage:si in
    Server.submit (Node.server node) ~work ~tag:item
      ~on_start:(fun () ->
        start := Engine.now t.engine;
        if Bus.active t.bus then
          Bus.emit t.bus (Event.Service_start { item; stage = si; node = node_idx }))
      (fun () ->
        s.in_service <- None;
        if Bus.active t.bus then
          Bus.emit t.bus
            (Event.Service_finish { item; stage = si; node = node_idx; start = !start });
        (* The output move is part of the stage's cycle — the stage stays
           busy until its output is delivered downstream (synchronous send,
           as in the skeleton's (move).(process).(move) behaviour), so slow
           links throttle the stage that feeds them. *)
        forward t ~item ~from_stage:si ~from_node:node_idx ~on_delivered:(fun () ->
            s.busy <- false;
            try_dispatch t si))
  end

and forward t ~item ~from_stage ~from_node ~on_delivered =
  let ns = Array.length t.stages in
  let bytes = t.stages.(from_stage).spec.Stage.output_bytes in
  if from_stage = ns - 1 then
    (* Output crosses the user link from wherever the last stage ran. *)
    let link = Topology.user_link t.topo from_node in
    Link.transfer link ~bytes (fun () ->
        t.completed <- t.completed + 1;
        if Bus.active t.bus then Bus.emit t.bus (Event.Completion { item });
        if t.open_stream then begin
          match Hashtbl.find_opt t.arrival_stamps item with
          | Some arrival ->
              Hashtbl.remove t.arrival_stamps item;
              if Bus.active t.bus then Bus.emit t.bus (Event.Sojourn { item; arrival });
              (match t.on_completion with Some f -> f ~item ~arrival | None -> ())
          | None -> ()
        end;
        on_delivered ())
  else begin
    let dst_stage = t.stages.(from_stage + 1) in
    let dst_node = dst_stage.node in
    let link = Topology.link t.topo ~src:from_node ~dst:dst_node in
    let start = Engine.now t.engine in
    Link.transfer link ~bytes (fun () ->
        if Bus.active t.bus then
          Bus.emit t.bus
            (Event.Transfer { item; from_stage; src = from_node; dst = dst_node; start; bytes });
        land_delivery t dst_stage (fun () ->
            Ring.push dst_stage.pending item;
            if Bus.active t.bus then
              Bus.emit t.bus
                (Event.Queue_sample
                   { stage = from_stage + 1; depth = Ring.length dst_stage.pending });
            on_delivered ();
            try_dispatch t (from_stage + 1)))
  end

(* Apply the buffer bound: a delivery to a full stage parks (holding its
   upstream sender busy — that is the back pressure) until a slot opens. *)
and land_delivery t dst deliver =
  match t.queue_capacity with
  | Some capacity when Ring.length dst.pending >= capacity ->
      Ring.push dst.waiting_deliveries deliver
  | Some _ | None -> deliver ()

let inject t ~item =
  let first = t.stages.(0) in
  let link = Topology.user_link t.topo first.node in
  Link.transfer link ~bytes:t.input.Stream_spec.item_bytes (fun () ->
      land_delivery t first (fun () ->
          Ring.push first.pending item;
          if Bus.active t.bus then
            Bus.emit t.bus (Event.Queue_sample { stage = 0; depth = Ring.length first.pending });
          try_dispatch t 0))

(* Payload bytes a queued item of stage [si] carries during a migration or a
   checkpoint re-dispatch: the upstream stage's output (or the user input for
   the first stage). *)
let queued_item_bytes t si =
  if si = 0 then t.input.Stream_spec.item_bytes
  else t.stages.(si - 1).spec.Stage.output_bytes

(* --- fault semantics ------------------------------------------------- *)

(* Land parked deliveries while buffer room remains. The dispatch path lands
   one per popped item; this covers the crash path, where draining [pending]
   frees slots without any dispatch happening. *)
let rec refill t s =
  if not (Ring.is_empty s.waiting_deliveries) then begin
    match t.queue_capacity with
    | Some capacity when Ring.length s.pending >= capacity -> ()
    | Some _ | None ->
        (Ring.pop s.waiting_deliveries) ();
        refill t s
  end

(* A crash takes down every stage resident on the node: the in-service item
   and all queued inputs are gone (fail-stop — no output escapes), recorded
   per stage so the checkpoint-based re-dispatch can replay exactly them.
   The queued inputs of a stage already mid-migration survive — their bytes
   are part of the migration transfer in flight on the network, not on the
   dying node — but its in-service item still executes locally and dies.
   An output move already handed to the network also survives — the send
   happened. *)
let on_crash t node =
  Array.iter
    (fun s ->
      if s.node = node then begin
        (match s.in_service with
        | Some item ->
            s.in_service <- None;
            s.busy <- false;
            s.lost <- item :: s.lost;
            t.lost_total <- t.lost_total + 1;
            if Bus.active t.bus then
              Bus.emit t.bus (Event.Item_lost { item; stage = s.index; node })
        | None -> ());
        if s.migrating_to = None && not (Ring.is_empty s.pending) then begin
          Ring.iter s.pending (fun item ->
              s.lost <- item :: s.lost;
              t.lost_total <- t.lost_total + 1;
              if Bus.active t.bus then
                Bus.emit t.bus (Event.Item_lost { item; stage = s.index; node }));
          Ring.clear s.pending;
          if Bus.active t.bus then
            Bus.emit t.bus (Event.Queue_sample { stage = s.index; depth = 0 });
          refill t s
        end
      end)
    t.stages;
  ignore (Server.drop_all (Node.server (Topology.node t.topo node)))

(* Re-dispatch a stage's lost items from the per-stage checkpoint: their
   payloads are re-fetched from the upstream stage (the user site for stage
   0) in one bulk transfer, then prepended to the pending queue. Prepending
   preserves the pipeline's FIFO order: each single-server stage emits in
   item order, so everything downstream of the crash point carries smaller
   ids than every lost item, and anything that landed in [pending] after the
   crash carries larger ids. *)
let restore_stage t si =
  let s = t.stages.(si) in
  (* Only replay onto a live node; a dead destination keeps the checkpoint
     until a later recovery or failover finds the stage a live home. *)
  if s.lost <> [] && Node.up (Topology.node t.topo s.node) then begin
    let items = List.sort compare s.lost in
    s.lost <- [];
    let bytes = Float.of_int (List.length items) *. queued_item_bytes t si in
    let link =
      if si = 0 then Topology.user_link t.topo s.node
      else Topology.link t.topo ~src:t.stages.(si - 1).node ~dst:s.node
    in
    s.replaying <- true;
    Link.transfer link ~bytes (fun () ->
        s.replaying <- false;
        (* Prepend in order: pushing the reversed list at the front leaves
           the replayed items ahead of everything queued since, smallest id
           first. *)
        List.iter (fun item -> Ring.push_front s.pending item) (List.rev items);
        List.iter
          (fun item ->
            t.redispatched_total <- t.redispatched_total + 1;
            if Bus.active t.bus then
              Bus.emit t.bus (Event.Item_redispatched { item; stage = si; node = s.node }))
          items;
        if Bus.active t.bus then
          Bus.emit t.bus (Event.Queue_sample { stage = si; depth = Ring.length s.pending });
        try_dispatch t si)
  end

(* Naive same-node recovery: when a node rejoins, each stage still mapped to
   it replays its lost items where it stands. *)
let on_recover t node =
  Array.iteri
    (fun si s ->
      if s.node = node && s.migrating_to = None then begin
        restore_stage t si;
        try_dispatch t si
      end)
    t.stages

let create ?queue_capacity ?trace ?(arrivals = `From_input) ?on_completion ~rng ~topo ~stages
    ~mapping ~input () =
  check_mapping topo stages mapping;
  if Array.length stages = 0 then invalid_arg "Skel_sim: empty pipeline";
  (match queue_capacity with
  | Some c when c < 1 -> invalid_arg "Skel_sim: queue capacity must be at least 1"
  | Some _ | None -> ());
  let engine = Topology.engine topo in
  (* The simulator emits structured events on the engine's bus; the caller's
     trace (when given) is subscribed as one sink among any others (JSONL,
     Perfetto, metrics) attached before or during the run. Without any such
     full-stream sink the bus stays inactive and the guarded hot emits
     construct no payloads at all. *)
  (match trace with Some trace -> Trace.subscribe trace (Engine.bus engine) | None -> ());
  let t =
    {
      engine;
      bus = Engine.bus engine;
      topo;
      rng;
      stages =
        Array.mapi
          (fun index spec ->
            {
              spec;
              index;
              node = mapping.(index);
              pending = Ring.create ~dummy:0;
              waiting_deliveries = Ring.create ~dummy:(fun () -> ());
              busy = false;
              in_service = None;
              migrating_to = None;
              lost = [];
              replaying = false;
            })
          stages;
      work_table = Hashtbl.create 1024;
      work_seed = Int64.to_int (Rng.bits64 rng) land max_int;
      input;
      queue_capacity;
      open_stream = (arrivals = `External);
      arrival_stamps = Hashtbl.create (if arrivals = `External then 1024 else 1);
      on_completion;
      injected = (if arrivals = `External then 0 else input.Stream_spec.items);
      completed = 0;
      lost_total = 0;
      redispatched_total = 0;
    }
  in
  (* React to fault events already ordered on the bus: the crash/recovery
     event precedes the item-loss / re-dispatch events it causes. Control
     interest: the fault handler must work on a trace-less bus without
     keeping the per-item hot emits alive. *)
  ignore
    (Bus.subscribe ~interest:Control t.bus (fun (event : Event.t) ->
         match event.Event.payload with
         | Event.Node_crashed { node } -> on_crash t node
         | Event.Node_recovered { node } -> on_recover t node
         | _ -> ()));
  (match arrivals with
  | `External -> ()
  | `From_input ->
      let times = Stream_spec.arrival_times input rng in
      Array.iteri
        (fun item time -> ignore (Engine.schedule_at engine ~time (fun () -> inject t ~item)))
        times);
  t

(* Open-arrival entry point: the serving layer calls this from its own
   arrival events. The stamp is taken before the user-link transfer starts,
   so the recorded sojourn covers the full user-visible residence. *)
let inject_external t ~item =
  if not t.open_stream then
    invalid_arg "Skel_sim.inject: simulator was created with ~arrivals:`From_input";
  Hashtbl.replace t.arrival_stamps item (Engine.now t.engine);
  t.injected <- t.injected + 1;
  inject t ~item

(* The exported [inject] is the stamping open-stream one; the closed path's
   internal injector above keeps its name for the arrival scheduling in
   [create]. *)
let inject = inject_external

let mapping t = Array.map (fun s -> s.node) t.stages

let remap t new_mapping =
  check_mapping t.topo (Array.map (fun s -> s.spec) t.stages) new_mapping;
  Array.iter
    (fun s ->
      match s.migrating_to with
      | Some dest when new_mapping.(s.index) <> dest ->
          invalid_arg "Skel_sim.remap: stage already migrating"
      | Some _ | None -> ())
    t.stages;
  let total = ref 0.0 in
  Array.iter
    (fun s ->
      let dst = new_mapping.(s.index) in
      if dst <> s.node && s.migrating_to = None then begin
        let src = s.node in
        let bytes =
          s.spec.Stage.state_bytes
          +. (Float.of_int (Ring.length s.pending) *. queued_item_bytes t s.index)
        in
        total := !total +. bytes;
        s.migrating_to <- Some dst;
        let link = Topology.link t.topo ~src ~dst in
        Link.transfer link ~bytes (fun () ->
            s.node <- dst;
            s.migrating_to <- None;
            (* Landing on a live node replays any checkpointed losses. *)
            restore_stage t s.index;
            try_dispatch t s.index)
      end)
    t.stages;
  !total

let failover t new_mapping =
  check_mapping t.topo (Array.map (fun s -> s.spec) t.stages) new_mapping;
  Array.iter
    (fun s ->
      match s.migrating_to with
      | Some dest when new_mapping.(s.index) <> dest ->
          invalid_arg "Skel_sim.failover: stage already migrating"
      | Some _ | None -> ())
    t.stages;
  Array.iter
    (fun s ->
      let dst = new_mapping.(s.index) in
      if dst <> s.node && s.migrating_to = None then begin
        if Node.up (Topology.node t.topo s.node) then begin
          (* Live source: an ordinary state migration. *)
          let src = s.node in
          let bytes =
            s.spec.Stage.state_bytes
            +. (Float.of_int (Ring.length s.pending) *. queued_item_bytes t s.index)
          in
          s.migrating_to <- Some dst;
          let link = Topology.link t.topo ~src ~dst in
          Link.transfer link ~bytes (fun () ->
              s.node <- dst;
              s.migrating_to <- None;
              restore_stage t s.index;
              try_dispatch t s.index)
        end
        else begin
          (* Dead source: there is no state to fetch from the corpse. The
             stage is re-instantiated at [dst] immediately and its lost
             items are re-dispatched from the checkpoint (their payloads
             re-fetched from upstream by [restore_stage]). *)
          s.node <- dst;
          if Bus.active t.bus then
            Bus.emit t.bus
              (Event.Queue_sample { stage = s.index; depth = Ring.length s.pending });
          restore_stage t s.index;
          try_dispatch t s.index
        end
      end
      else if dst = s.node && Node.up (Topology.node t.topo s.node) then begin
        restore_stage t s.index;
        try_dispatch t s.index
      end)
    t.stages

let migrating t = Array.exists (fun s -> s.migrating_to <> None) t.stages

let items_total t = if t.open_stream then t.injected else t.input.Stream_spec.items
let items_injected t = t.injected
let items_completed t = t.completed
let finished t = t.completed = items_total t

let lost_items t =
  List.sort compare (Array.fold_left (fun acc s -> s.lost @ acc) [] t.stages)

let items_lost_total t = t.lost_total
let items_redispatched_total t = t.redispatched_total

(* The stall watchdog's report: which stage holds what, where, and whether a
   dead node explains the stall — so a fault-induced DNF reads differently
   from a modelling bug. *)
let describe_stall t reason =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "Skel_sim: %s at t=%.2f with %d/%d items completed" reason
       (Engine.now t.engine) t.completed (items_total t));
  let dead_holds = ref false in
  Array.iter
    (fun s ->
      let node_up = Node.up (Topology.node t.topo s.node) in
      if not node_up then dead_holds := true;
      Buffer.add_string b
        (Printf.sprintf "\n  stage %d (%s) on node %d [%s]: %s%s, %d queued, %d parked, %d lost"
           s.index s.spec.Stage.name s.node
           (if node_up then "up" else "DOWN")
           (if s.busy then
              match s.in_service with
              | Some item -> Printf.sprintf "serving item %d" item
              | None -> "busy (output move in flight)"
            else "idle")
           (match s.migrating_to with
           | Some d -> Printf.sprintf ", migrating to node %d" d
           | None -> "")
           (Ring.length s.pending)
           (Ring.length s.waiting_deliveries)
           (List.length s.lost)))
    t.stages;
  if !dead_holds then
    Buffer.add_string b
      "\n  a DOWN node holds a stage: fault-induced stall (DNF) — recovery or failover is \
       required to finish, this is not a modelling bug";
  Buffer.contents b

let run ?(max_time = 1e7) t =
  let rec loop () =
    if finished t then `Completed
    else if Engine.now t.engine > max_time then
      `Stalled (describe_stall t "exceeded max_time before draining")
    else if Engine.step t.engine then loop ()
    else if finished t then `Completed
    else `Stalled (describe_stall t "event queue drained with items in flight")
  in
  loop ()

let run_to_completion ?max_time t =
  match run ?max_time t with `Completed -> () | `Stalled message -> failwith message

let execute ?(rng = Rng.create 42) ?queue_capacity ~topo ~stages ~mapping ~input () =
  let trace = Trace.create () in
  let t = create ?queue_capacity ~trace ~rng ~topo ~stages ~mapping ~input () in
  run_to_completion t;
  trace
