(** Typed pipelines of OCaml functions — the programming interface of the
    shared-memory backend. A [(‘a, ’b) t] transforms a stream of [’a] into a
    stream of [’b], one output per input ([Pipeline1for1]). *)

type ('a, 'b) t =
  | Last : ('a -> 'b) -> ('a, 'b) t
  | Stage : ('a -> 'c) * ('c, 'b) t -> ('a, 'b) t

val last : ('a -> 'b) -> ('a, 'b) t
(** A single-stage pipeline. *)

val ( @> ) : ('a -> 'c) -> ('c, 'b) t -> ('a, 'b) t
(** [f @> rest] prepends a stage: [f @> g @> last h]. *)

val length : ('a, 'b) t -> int
(** Number of stages. *)

val apply : ('a, 'b) t -> 'a -> 'b
(** Run one item through sequentially — the reference semantics every
    parallel backend must agree with. *)

val apply_observed : bus:Aspipe_obs.Bus.t -> item:int -> ('a, 'b) t -> 'a -> 'b
(** Like {!apply}, but emits [Service_start]/[Service_finish] per stage and
    a final [Completion] on [bus], stamped with the bus clock — wire a
    wall-clock bus (e.g. [Bus.create ~clock:Unix.gettimeofday ()]) to
    profile direct shared-memory execution with the same sinks the
    simulators use. Direct execution has no placement, so events carry
    [node = 0]. *)

val fuse_groups : int array -> ('a, 'b) t -> ('a, 'b) t
(** [fuse_groups groups p] composes adjacent stages assigned to the same
    group into one, so the result has one stage per distinct group — the
    shared-memory analogue of mapping several pipeline stages onto one
    processor. [groups] must have length [length p] and be non-decreasing
    (stage colocations are contiguous); raises [Invalid_argument] otherwise. *)
