module Spsc = Aspipe_util.Spsc

let run_seq pipe inputs = List.map (Pipe.apply pipe) inputs

(* ----------------------------------------------------- SPSC ring backend *)

(* Pump [cin] through [f] into [cout] in chunks of up to [batch] items,
   then propagate the close downstream so the chain shuts down stage by
   stage. Each inter-stage ring has exactly one producer (the upstream
   stage or the feeder) and one consumer (this stage), so the lock-free
   SPSC discipline holds along the whole chain.

   Failure protocol (identical to the old Chan backend): if [f] raises,
   close both neighbours — upstream senders blocked on a full ring wake up
   via {!Spsc.Closed} instead of deadlocking — then re-raise for
   {!Domain.join} to surface. If the *downstream* ring is closed under us
   mid-push, a later stage failed: relay the shutdown upstream and exit
   with the typed close signal; the failing stage carries the real
   exception out through its own join. *)
let pump ~batch f cin cout =
  let inbuf = Array.make batch None in
  let outbuf = Array.make batch None in
  let rec loop () =
    let n = Spsc.pop_chunk cin inbuf ~pos:0 ~len:batch in
    if n = 0 then Spsc.close cout
    else begin
      match
        for i = 0 to n - 1 do
          let x = match inbuf.(i) with Some x -> x | None -> assert false in
          inbuf.(i) <- None;
          outbuf.(i) <- Some (f x)
        done
      with
      | exception e ->
          Spsc.close cin;
          Spsc.close cout;
          raise e
      | () -> (
          match Spsc.push_chunk cout outbuf ~pos:0 ~len:n with
          | () -> loop ()
          | exception Spsc.Closed ->
              Spsc.close cin;
              raise Spsc.Closed)
    end
  in
  loop ()

type packed_domain = Packed : 'a Domain.t -> packed_domain

(* The shared skeleton of [run] and [run_fold]: build one domain per stage
   over SPSC rings, feed on a dedicated domain, consume on the caller's
   domain, then join everything and re-raise the actual stage failure if
   there was one — preferring it over the [Spsc.Closed] relays its
   neighbours exited with — so a raising stage function surfaces as its own
   exception rather than a hang. [feed] must handle {!Spsc.Closed} itself
   (it just means "stop feeding"). *)
let run_core :
    type a b c.
    capacity:int -> batch:int -> (a, b) Pipe.t -> feed:(a Spsc.t -> unit) -> consume:(b Spsc.t -> c) -> c =
 fun ~capacity ~batch pipe ~feed ~consume ->
  if capacity <= 0 then invalid_arg "Skel_mc.run: capacity must be positive";
  if batch <= 0 then invalid_arg "Skel_mc.run: batch must be positive";
  let cin = Spsc.create ~capacity in
  let rec build :
      type a b. (a, b) Pipe.t -> a Spsc.t -> packed_domain list -> packed_domain list * b Spsc.t =
   fun p cin domains ->
    match p with
    | Pipe.Last f ->
        let cout = Spsc.create ~capacity in
        let d = Domain.spawn (fun () -> pump ~batch f cin cout) in
        (Packed d :: domains, cout)
    | Pipe.Stage (f, rest) ->
        let cmid = Spsc.create ~capacity in
        let d = Domain.spawn (fun () -> pump ~batch f cin cmid) in
        build rest cmid (Packed d :: domains)
  in
  let domains, cout = build pipe cin [] in
  let feeder = Domain.spawn (fun () -> feed cin) in
  let result = consume cout in
  Domain.join feeder;
  let failures =
    List.filter_map
      (fun (Packed d) -> try ignore (Domain.join d); None with e -> Some e)
      domains
  in
  (match List.find_opt (function Spsc.Closed -> false | _ -> true) failures with
  | Some e -> raise e
  | None -> ( match failures with e :: _ -> raise e | [] -> ()));
  result

(* Chunked feeder over a list. A failing stage closes the whole chain; the
   typed [Closed] here just means "stop feeding". *)
let feed_list ~batch inputs cin =
  let buf = Array.make batch None in
  let rec fill i xs =
    match xs with
    | x :: rest when i < batch ->
        buf.(i) <- Some x;
        fill (i + 1) rest
    | rest -> (i, rest)
  in
  try
    let rec go xs =
      match xs with
      | [] -> Spsc.close cin
      | xs ->
          let n, rest = fill 0 xs in
          Spsc.push_chunk cin buf ~pos:0 ~len:n;
          go rest
    in
    go inputs
  with Spsc.Closed -> ()

let drain_fold ~batch ~init ~f cout =
  let buf = Array.make batch None in
  let rec go acc =
    let n = Spsc.pop_chunk cout buf ~pos:0 ~len:batch in
    if n = 0 then acc
    else begin
      let acc = ref acc in
      for i = 0 to n - 1 do
        (match buf.(i) with Some y -> acc := f !acc y | None -> assert false);
        buf.(i) <- None
      done;
      go !acc
    end
  in
  go init

let run ?(capacity = 8) ?(batch = 1) pipe inputs =
  List.rev
    (run_core ~capacity ~batch pipe
       ~feed:(feed_list ~batch inputs)
       ~consume:(drain_fold ~batch ~init:[] ~f:(fun acc y -> y :: acc)))

let run_fold ?(capacity = 8) ?(batch = 1) pipe ~items ~gen ~init ~f =
  if items < 0 then invalid_arg "Skel_mc.run_fold: items must be non-negative";
  let feed cin =
    let buf = Array.make batch None in
    try
      let i = ref 0 in
      while !i < items do
        let n = min batch (items - !i) in
        for k = 0 to n - 1 do
          buf.(k) <- Some (gen (!i + k))
        done;
        Spsc.push_chunk cin buf ~pos:0 ~len:n;
        i := !i + n
      done;
      Spsc.close cin
    with Spsc.Closed -> ()
  in
  run_core ~capacity ~batch pipe ~feed ~consume:(drain_fold ~batch ~init ~f)

let run_grouped ?capacity ?batch ~groups pipe inputs =
  run ?capacity ?batch (Pipe.fuse_groups groups pipe) inputs

(* ------------------------------------------- legacy Chan backend (baseline) *)

(* The pre-SPSC backend — one mutex+condvar bounded channel per inter-stage
   link, items handed over one at a time. Kept as the measured baseline for
   `bench --mc` (BENCH_8.json records Chan-vs-Spsc throughput) and as a
   second implementation of the same close/failure protocol for the
   differential tests. Semantics are identical to [run]. *)
let pump_chan f cin cout =
  let rec loop () =
    match Chan.recv cin with
    | None -> Chan.close cout
    | Some x -> (
        match try Ok (f x) with e -> Error e with
        | Error e ->
            Chan.close cin;
            Chan.close cout;
            raise e
        | Ok y -> (
            match Chan.send cout y with
            | () -> loop ()
            | exception Chan.Closed ->
                Chan.close cin;
                raise Chan.Closed))
  in
  loop ()

let run_chan_core :
    type a b c.
    capacity:int -> (a, b) Pipe.t -> feed:(a Chan.t -> unit) -> consume:(b Chan.t -> c) -> c =
 fun ~capacity pipe ~feed ~consume ->
  let cin = Chan.create ~capacity in
  let rec build :
      type a b. (a, b) Pipe.t -> a Chan.t -> packed_domain list -> packed_domain list * b Chan.t =
   fun p cin domains ->
    match p with
    | Pipe.Last f ->
        let cout = Chan.create ~capacity in
        let d = Domain.spawn (fun () -> pump_chan f cin cout) in
        (Packed d :: domains, cout)
    | Pipe.Stage (f, rest) ->
        let cmid = Chan.create ~capacity in
        let d = Domain.spawn (fun () -> pump_chan f cin cmid) in
        build rest cmid (Packed d :: domains)
  in
  let domains, cout = build pipe cin [] in
  let feeder = Domain.spawn (fun () -> feed cin) in
  let result = consume cout in
  Domain.join feeder;
  let failures =
    List.filter_map
      (fun (Packed d) -> try ignore (Domain.join d); None with e -> Some e)
      domains
  in
  (match List.find_opt (function Chan.Closed -> false | _ -> true) failures with
  | Some e -> raise e
  | None -> ( match failures with e :: _ -> raise e | [] -> ()));
  result

let run_chan ?(capacity = 8) pipe inputs =
  run_chan_core ~capacity pipe
    ~feed:(fun cin ->
      try
        List.iter (Chan.send cin) inputs;
        Chan.close cin
      with Chan.Closed -> ())
    ~consume:(fun cout ->
      let rec drain acc =
        match Chan.recv cout with None -> List.rev acc | Some y -> drain (y :: acc)
      in
      drain [])

let run_chan_fold ?(capacity = 8) pipe ~items ~gen ~init ~f =
  if items < 0 then invalid_arg "Skel_mc.run_chan_fold: items must be non-negative";
  run_chan_core ~capacity pipe
    ~feed:(fun cin ->
      try
        for i = 0 to items - 1 do
          Chan.send cin (gen i)
        done;
        Chan.close cin
      with Chan.Closed -> ())
    ~consume:(fun cout ->
      let rec drain acc =
        match Chan.recv cout with None -> acc | Some y -> drain (f acc y)
      in
      drain init)

(* ------------------------------------------------------------------ timing *)

(* bechamel's monotonic clock (ns since an arbitrary epoch): elapsed-time
   measurement without wall-clock epochs, matching the lint R1 discipline
   for the direct-execution engines. *)
let now_seconds () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

let run_timed ?capacity ?batch pipe inputs =
  let t0 = now_seconds () in
  let outputs = run ?capacity ?batch pipe inputs in
  (outputs, now_seconds () -. t0)

let run_seq_timed pipe inputs =
  let t0 = now_seconds () in
  let outputs = run_seq pipe inputs in
  (outputs, now_seconds () -. t0)
