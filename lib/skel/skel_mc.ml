let run_seq pipe inputs = List.map (Pipe.apply pipe) inputs

(* Pump every element of [cin] through [f] into [cout], then propagate the
   close downstream so the chain shuts down stage by stage. If [f] raises,
   the failure still closes [cout] (and drains+closes [cin] so upstream
   senders blocked on a full channel wake up via {!Chan.Closed} instead of
   deadlocking), then re-raises for {!Domain.join} to surface. *)
let pump f cin cout =
  let rec loop () =
    match Chan.recv cin with
    | None -> Chan.close cout
    | Some x -> (
        match try Ok (f x) with e -> Error e with
        | Error e ->
            Chan.close cin;
            Chan.close cout;
            raise e
        | Ok y -> (
            match Chan.send cout y with
            | () -> loop ()
            | exception Chan.Closed ->
                (* Downstream failed and closed the chain mid-stream:
                   relay the shutdown upstream and exit with the typed
                   close signal — the failing stage carries the real
                   exception out through its own join. *)
                Chan.close cin;
                raise Chan.Closed))
  in
  loop ()

type packed_domain = Packed : 'a Domain.t -> packed_domain

let run ?(capacity = 8) pipe inputs =
  let cin = Chan.create ~capacity in
  let rec build : type a b. (a, b) Pipe.t -> a Chan.t -> packed_domain list -> packed_domain list * b Chan.t =
   fun p cin domains ->
    match p with
    | Pipe.Last f ->
        let cout = Chan.create ~capacity in
        let d = Domain.spawn (fun () -> pump f cin cout) in
        (Packed d :: domains, cout)
    | Pipe.Stage (f, rest) ->
        let cmid = Chan.create ~capacity in
        let d = Domain.spawn (fun () -> pump f cin cmid) in
        build rest cmid (Packed d :: domains)
  in
  let domains, cout = build pipe cin [] in
  let feeder =
    Domain.spawn (fun () ->
        (* A failing stage closes the whole chain; the typed [Closed] here
           just means "stop feeding", the stage's own exception carries the
           failure out through its join below. *)
        try
          List.iter (Chan.send cin) inputs;
          Chan.close cin
        with Chan.Closed -> ())
  in
  let rec drain acc =
    match Chan.recv cout with None -> List.rev acc | Some y -> drain (y :: acc)
  in
  let outputs = drain [] in
  Domain.join feeder;
  (* Join every stage; after all domains have stopped, re-raise the actual
     stage failure if there was one — preferring it over the [Chan.Closed]
     relays its neighbours exited with — so a raising stage function
     surfaces as its own exception rather than a hang. *)
  let failures =
    List.filter_map
      (fun (Packed d) -> try ignore (Domain.join d); None with e -> Some e)
      domains
  in
  (match List.find_opt (function Chan.Closed -> false | _ -> true) failures with
  | Some e -> raise e
  | None -> ( match failures with e :: _ -> raise e | [] -> ()));
  outputs

let run_grouped ?capacity ~groups pipe inputs = run ?capacity (Pipe.fuse_groups groups pipe) inputs

let now_seconds () = Unix.gettimeofday ()

let run_timed ?capacity pipe inputs =
  let t0 = now_seconds () in
  let outputs = run ?capacity pipe inputs in
  (outputs, now_seconds () -. t0)

let run_seq_timed pipe inputs =
  let t0 = now_seconds () in
  let outputs = run_seq pipe inputs in
  (outputs, now_seconds () -. t0)
