(** The shared-memory execution backend: one OCaml 5 domain per (possibly
    fused) pipeline stage, connected by lock-free SPSC ring FIFOs
    ({!Aspipe_util.Spsc}) with batched item transfer.

    This is the backend used by the real-speedup experiments: the same
    {!Pipe.t} program runs sequentially ({!run_seq}), with one domain per
    stage ({!run}), or with stages fused into processor groups
    ({!run_grouped}) — the shared-memory analogue of the grid mapping. The
    pre-SPSC mutex+condvar channel backend survives as {!run_chan}, the
    measured baseline of `bench --mc` (BENCH_8.json). *)

val run_seq : ('a, 'b) Pipe.t -> 'a list -> 'b list
(** Reference semantics, zero parallelism. *)

val run : ?capacity:int -> ?batch:int -> ('a, 'b) Pipe.t -> 'a list -> 'b list
(** One domain per stage, plus a feeder. Output order equals input order.
    [capacity] bounds each inter-stage ring (default 8, rounded up to a
    power of two); [batch] (default 1) is the chunk size of every
    inter-stage transfer — larger batches amortise the two atomic index
    updates per handoff over many items. Raises [Invalid_argument] on a
    non-positive [capacity] or [batch]; any exception raised by a stage
    function is re-raised here after the chain shuts down. *)

val run_grouped :
  ?capacity:int -> ?batch:int -> groups:int array -> ('a, 'b) Pipe.t -> 'a list -> 'b list
(** Fuses stages per {!Pipe.fuse_groups} first, then runs one domain per
    group. *)

val run_fold :
  ?capacity:int ->
  ?batch:int ->
  ('a, 'b) Pipe.t ->
  items:int ->
  gen:(int -> 'a) ->
  init:'c ->
  f:('c -> 'b -> 'c) ->
  'c
(** [run] without materializing either stream: feeds [gen 0 .. gen (items-1)]
    and folds the outputs in order on the caller's domain. The
    tens-of-millions-of-items benchmark path. *)

val run_chan : ?capacity:int -> ('a, 'b) Pipe.t -> 'a list -> 'b list
(** The legacy backend over {!Chan} (mutex+condvar bounded channels,
    one-item-at-a-time handoff). Same semantics as {!run}; kept as the
    benchmark baseline and differential-test foil. *)

val run_chan_fold :
  ?capacity:int ->
  ('a, 'b) Pipe.t ->
  items:int ->
  gen:(int -> 'a) ->
  init:'c ->
  f:('c -> 'b -> 'c) ->
  'c
(** {!run_fold} over the legacy {!Chan} backend. *)

val pump : batch:int -> ('a -> 'b) -> 'a Aspipe_util.Spsc.t -> 'b Aspipe_util.Spsc.t -> unit
(** The per-stage loop: chunked pop → apply → chunked push, with the
    close/failure relay protocol. Exposed for {!Farm_mc}'s streaming farm;
    not intended for direct use. *)

val now_seconds : unit -> float
(** Monotonic clock (bechamel's [Monotonic_clock]), seconds since an
    arbitrary epoch — for durations only. *)

val run_timed : ?capacity:int -> ?batch:int -> ('a, 'b) Pipe.t -> 'a list -> 'b list * float
(** {!run} plus elapsed seconds (monotonic clock). *)

val run_seq_timed : ('a, 'b) Pipe.t -> 'a list -> 'b list * float
