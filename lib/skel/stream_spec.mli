(** Input-stream specifications: how many items enter the pipeline, when,
    and how large each item's payload is on the user link.

    A stream spec describes a {e closed} input: a known, finite batch whose
    arrival instants can be materialized up front. Open-ended serving
    workloads (time-varying Poisson, Markov-modulated, trace replay) live
    in [Aspipe_serve.Arrival], which generates arrivals lazily on the
    engine; a closed stream is the bounded special case, embedded there by
    [Arrival.of_stream_spec]. *)

type arrival =
  | Immediate  (** the whole input set is available at t = 0 *)
  | Spaced of float  (** one item every [interval] seconds *)
  | Poisson of float  (** exponential inter-arrivals with the given rate *)
      (** Note: these constructors are kept for closed-batch experiments
          (E1–E20) and remain fully supported there, but new open-arrival
          work should prefer [Aspipe_serve.Arrival] — [Poisson] here is the
          bounded, pre-materialized form of [Arrival.poisson]. *)

type t = { items : int; arrival : arrival; item_bytes : float; batch : int }

val make : ?arrival:arrival -> ?item_bytes:float -> ?batch:int -> items:int -> unit -> t
(** Defaults: [Immediate] arrivals, [1e5] bytes per item, [batch] 1.
    [batch] is the per-stage transfer chunk size when this stream drives
    the shared-memory backend ({!Skel_mc.run}'s [?batch]); the virtual-time
    engines hand items over singly regardless. *)

val arrival_times : t -> Aspipe_util.Rng.t -> float array
(** Materialize the arrival instants, length [items], non-decreasing. *)

val pp : Format.formatter -> t -> unit
