(** The simulation backend of the pipeline skeleton.

    Runs an [Ns]-stage [Pipeline1for1] over a {!Aspipe_grid.Topology.t} under
    a stage→node mapping, producing a {!Aspipe_grid.Trace.t}. Semantics:

    - items enter at the user site and cross the user link to the first
      stage's node; outputs cross the user link back;
    - each stage serves one item at a time, in order; colocated stages share
      their node's FCFS server;
    - a stage's cycle is [(move in).(process).(move out)]: the output move is
      synchronous, so the stage cannot start its next item until the
      downstream transfer is delivered — slow links throttle the stages that
      feed them, as in the skeleton's performance model;
    - {!remap} migrates stages to new nodes mid-run: each moving stage blocks,
      its state (plus queued item payloads) crosses the old→new link, then it
      resumes at the new node. An in-flight service finishes on the old node.

    Fault semantics (driven by {!Aspipe_grid.Node.set_up} transitions, which
    the simulator observes through the engine bus):

    - a {e crash} loses exactly the items in service and queued at the
      node's stages (fail-stop): they are recorded in a per-stage
      checkpoint (the set of accepted-but-unfinished item ids) and an
      {!Aspipe_obs.Event.Item_lost} is emitted per item. Outputs already
      handed to the network, state mid-migration, and queued inputs of a
      mid-migration stage survive — their bytes are in flight, not on the
      dying node;
    - a {e recovery} replays each resident stage's checkpoint in place:
      lost payloads are re-fetched from upstream in one bulk transfer and
      re-enter the pending queue ahead of later arrivals, preserving the
      pipeline's FIFO order ({!Aspipe_obs.Event.Item_redispatched} each);
    - {!failover} re-maps stages away from dead nodes without touching the
      corpse: the stage is re-instantiated at its new node and its
      checkpoint replayed there.

    The executor never looks at ground-truth availability — only the
    simulated clock — so adaptive policies on top of it are honestly
    evaluated against imperfect information. *)

type t

val create :
  ?queue_capacity:int ->
  ?trace:Aspipe_grid.Trace.t ->
  ?arrivals:[ `From_input | `External ] ->
  ?on_completion:(item:int -> arrival:float -> unit) ->
  rng:Aspipe_util.Rng.t ->
  topo:Aspipe_grid.Topology.t ->
  stages:Stage.t array ->
  mapping:int array ->
  input:Stream_spec.t ->
  unit ->
  t
(** Schedules all arrivals; nothing runs until the engine does.
    [queue_capacity] bounds every stage's input buffer (default unbounded):
    a delivery to a full stage parks, holding the upstream sender busy —
    with capacity 1 the pipeline approaches the bufferless synchronization
    of the CTMC model. [trace], when given, is subscribed to the engine bus
    as a full-stream sink; without it (or any other such sink) the run is
    unobserved and the hot path emits no event payloads at all.

    [arrivals] selects the stream model. The default, [`From_input],
    schedules the closed stream described by [input] up front, exactly as
    before. [`External] opens the stream: [input]'s arrival spec and item
    count are ignored, items enter only through {!inject} (typically from a
    lazily self-rescheduling {e arrival process} living on the same
    engine), every injected item is stamped with its arrival instant, and
    each departure emits an {!Aspipe_obs.Event.Sojourn} carrying that stamp
    — latency becomes a first-class output. [on_completion], fired after
    the emit, lets a serving driver account SLO windows without paying a
    bus subscription on closed runs.

    Raises [Invalid_argument] if the mapping length differs from the stage
    count, names an unknown node, or the capacity is below 1. *)

val inject : t -> item:int -> unit
(** Open-stream arrival: stamps [item] with the current virtual time and
    hands it to the first stage (crossing the user link like any other
    arrival). Only valid on a simulator created with [~arrivals:`External]
    — raises [Invalid_argument] on a closed-stream simulator, whose
    arrivals were already scheduled by {!create}. *)

val items_injected : t -> int
(** Arrivals accepted so far via {!inject} (0 on closed streams, where
    {!items_total} counts the input spec instead). *)

val mapping : t -> int array
(** Current stage→node assignment (updated by completed migrations). *)

val remap : t -> int array -> float
(** [remap t m] starts migrating every stage whose assignment changes and
    returns the total bytes in flight. Items already being serviced finish
    where they are. Re-entrant migrations to a stage already moving are
    rejected with [Invalid_argument]. *)

val failover : t -> int array -> unit
(** [failover t m] re-maps stages like {!remap}, but tolerates dead source
    nodes: a stage whose node is down is re-instantiated at its new node
    immediately (no state crosses a link out of the corpse) and its lost
    items are re-dispatched from the per-stage checkpoint. Stages moving
    between live nodes migrate normally; stages staying put on a live node
    replay any checkpointed losses. Raises [Invalid_argument] like
    {!remap} on conflicting in-flight migrations. *)

val migrating : t -> bool

val items_total : t -> int
val items_completed : t -> int
val finished : t -> bool

val lost_items : t -> int list
(** Item ids currently checkpointed as lost and awaiting re-dispatch,
    ascending. Empty in fault-free runs and after every loss has been
    replayed. *)

val items_lost_total : t -> int
(** Cumulative count of item-loss events (an item lost twice counts
    twice). *)

val items_redispatched_total : t -> int

val run : ?max_time:float -> t -> [ `Completed | `Stalled of string ]
(** Steps the engine until every item has left the pipeline, [max_time]
    virtual seconds elapse (default [1e7]), or the event queue drains with
    items still in flight. The [`Stalled] diagnostic names each stage, its
    node and liveness, what it is doing, and its queue/parked/lost depths —
    and says explicitly when a DOWN node holding a stage makes the stall a
    fault-induced DNF rather than a modelling bug. *)

val run_to_completion : ?max_time:float -> t -> unit
(** {!run}, raising [Failure] with the stall diagnostic on [`Stalled] —
    for callers that treat a non-draining workload as a bug. *)

val execute :
  ?rng:Aspipe_util.Rng.t ->
  ?queue_capacity:int ->
  topo:Aspipe_grid.Topology.t ->
  stages:Stage.t array ->
  mapping:int array ->
  input:Stream_spec.t ->
  unit ->
  Aspipe_grid.Trace.t
(** One-shot static run: create, drain, return the trace. *)
