module Variate = Aspipe_util.Variate

type t = {
  name : string;
  work : Variate.spec;
  output_bytes : float;
  state_bytes : float;
}

(* Atomic: stages may be created concurrently from campaign worker domains. *)
let counter = Atomic.make 0

let make ?name ?(output_bytes = 1e5) ?(state_bytes = 1e6) ~work () =
  if output_bytes < 0.0 || state_bytes < 0.0 then
    invalid_arg "Stage.make: sizes must be non-negative";
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "stage%d" (Atomic.fetch_and_add counter 1 + 1)
  in
  { name; work; output_bytes; state_bytes }

let mean_work t = Variate.mean_of_spec t.work

let balanced ?output_bytes ?state_bytes ~n ~work () =
  if n <= 0 then invalid_arg "Stage.balanced: n must be positive";
  Array.init n (fun i ->
      make ?output_bytes ?state_bytes
        ~name:(Printf.sprintf "s%d" i)
        ~work:(Variate.Constant work) ())

let imbalanced ?output_bytes ?state_bytes ~n ~work ~hot_stage ~factor () =
  if hot_stage < 0 || hot_stage >= n then invalid_arg "Stage.imbalanced: hot stage out of range";
  let stages = balanced ?output_bytes ?state_bytes ~n ~work () in
  stages.(hot_stage) <-
    make ?output_bytes ?state_bytes
      ~name:(Printf.sprintf "s%d_hot" hot_stage)
      ~work:(Variate.Constant (work *. factor))
      ();
  stages

let pp ppf t =
  Format.fprintf ppf "%s{work=%a, out=%gB, state=%gB}" t.name Variate.pp_spec t.work
    t.output_bytes t.state_bytes
