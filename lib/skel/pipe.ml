type ('a, 'b) t =
  | Last : ('a -> 'b) -> ('a, 'b) t
  | Stage : ('a -> 'c) * ('c, 'b) t -> ('a, 'b) t

let last f = Last f
let ( @> ) f rest = Stage (f, rest)

let length p =
  let rec count : type a b. int -> (a, b) t -> int =
   fun acc -> function Last _ -> acc + 1 | Stage (_, rest) -> count (acc + 1) rest
  in
  count 0 p

let rec apply : type a b. (a, b) t -> a -> b =
 fun p x -> match p with Last f -> f x | Stage (f, rest) -> apply rest (f x)

let apply_observed ~bus ~item p x =
  let module Bus = Aspipe_obs.Bus in
  let module Event = Aspipe_obs.Event in
  let timed : type a b. int -> (a -> b) -> a -> b =
   fun stage f x ->
    let start = Bus.now bus in
    if Bus.active bus then Bus.emit bus (Event.Service_start { item; stage; node = 0 });
    let y = f x in
    if Bus.active bus then Bus.emit bus (Event.Service_finish { item; stage; node = 0; start });
    y
  in
  let rec go : type a b. int -> (a, b) t -> a -> b =
   fun stage p x ->
    match p with
    | Last f ->
        let y = timed stage f x in
        if Bus.active bus then Bus.emit bus (Event.Completion { item });
        y
    | Stage (f, rest) -> go (stage + 1) rest (timed stage f x)
  in
  go 0 p x

let check_groups groups n =
  if Array.length groups <> n then invalid_arg "Pipe.fuse_groups: wrong group count";
  Array.iteri
    (fun i g -> if i > 0 && g < groups.(i - 1) then invalid_arg "Pipe.fuse_groups: groups must be non-decreasing")
    groups

let fuse_groups groups p =
  check_groups groups (length p);
  let rec fuse : type a b. int -> (a, b) t -> (a, b) t =
   fun i p ->
    match p with
    | Last f -> Last f
    | Stage (f, rest) -> (
        match rest with
        | Last g when groups.(i) = groups.(i + 1) -> Last (fun x -> g (f x))
        | Stage (g, rest2) when groups.(i) = groups.(i + 1) ->
            fuse i (Stage ((fun x -> g (f x)), rest2))
        | Last _ | Stage _ -> Stage (f, fuse (i + 1) rest))
  in
  fuse 0 p
