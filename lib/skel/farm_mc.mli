(** The task-farm skeleton on shared memory: a pool of worker domains pulls
    independent tasks from a shared index and writes results in place, so the
    output order always matches the input order. Used to parallelize a hot
    pipeline stage (stage replication). *)

val map : workers:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~workers f xs] applies [f] to every element using [workers] domains
    (1 means: compute in the calling domain). Exceptions raised by [f] are
    re-raised in the caller after all workers stop. *)

val map_array : workers:int -> ('a -> 'b) -> 'a array -> 'b array

val map_stream : ?capacity:int -> ?batch:int -> workers:int -> ('a -> 'b) -> 'a list -> 'b list
(** The ordered {e streaming} farm: chunks of [batch] items (default 1) are
    dealt round-robin into one lock-free SPSC ring per worker domain
    (capacity [capacity], default 64) and reassembled in deal order, so the
    output order equals the input order while items flow through bounded
    buffers instead of a materialized shared array. [workers = 1] computes
    in the calling domain. Exceptions raised by [f] are re-raised in the
    caller after the fan-out shuts down. *)

val pipeline_stage : workers:int -> ('a -> 'b) -> 'a list -> 'b list
(** {!map_stream} with its default ring shape; named for use as a
    replicated stage inside a pipeline. *)
