module Spsc = Aspipe_util.Spsc

let map_array ~workers f xs =
  if workers <= 0 then invalid_arg "Farm_mc: workers must be positive";
  let n = Array.length xs in
  if n = 0 then [||]
  else if workers = 1 then Array.map f xs
  else begin
    (* lint: domain-shared-ok workers write index-disjoint slots (Atomic next) and the array is read only after join *)
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n && Atomic.get failure = None then begin
          (match f xs.(i) with
          | y -> results.(i) <- Some y
          | exception e -> ignore (Atomic.compare_and_set failure None (Some e)));
          loop ()
        end
      in
      loop ()
    in
    let domains = List.init (min workers n) (fun _ -> Domain.spawn worker) in
    List.iter Domain.join domains;
    (match Atomic.get failure with Some e -> raise e | None -> ());
    Array.map (function Some y -> y | None -> assert false) results
  end

let map ~workers f xs = Array.to_list (map_array ~workers f (Array.of_list xs))

(* ------------------------------------------------------- streaming farm *)

(* The ordered streaming farm over SPSC rings: a feeder domain deals chunks
   of [batch] items round-robin into one input ring per worker; each worker
   is exactly {!Skel_mc.pump} (chunked pop → apply → chunked push) onto its
   own output ring; the caller's domain reassembles chunks in deal order, so
   the output order equals the input order and every ring keeps a single
   producer and a single consumer.

   Unlike {!map}, nothing is materialized per item beyond the rings'
   windows, and a slow item only delays its own worker's lane — the
   streaming analogue of the simulator's ordered farm.

   Failure: a raising worker closes both its rings (via pump); the feeder's
   next push into that lane raises [Closed] and shuts every input ring, the
   remaining workers drain out and close, and the collector — finding a lane
   closed before its expected chunk arrived — closes everything still open
   and joins. The worker's own exception then wins over the [Closed] relays,
   exactly as in {!Skel_mc.run}. *)
let map_stream ?(capacity = 64) ?(batch = 1) ~workers f xs =
  if workers <= 0 then invalid_arg "Farm_mc: workers must be positive";
  if capacity <= 0 then invalid_arg "Farm_mc: capacity must be positive";
  if batch <= 0 then invalid_arg "Farm_mc: batch must be positive";
  match xs with
  | [] -> []
  | xs when workers = 1 -> List.map f xs
  | xs ->
      let n = List.length xs in
      let w = workers in
      let ins = Array.init w (fun _ -> Spsc.create ~capacity) in
      let outs = Array.init w (fun _ -> Spsc.create ~capacity) in
      let domains =
        Array.init w (fun i -> Domain.spawn (fun () -> Skel_mc.pump ~batch f ins.(i) outs.(i)))
      in
      let feeder =
        Domain.spawn (fun () ->
            let buf = Array.make batch None in
            let rec fill i xs =
              match xs with
              | x :: rest when i < batch ->
                  buf.(i) <- Some x;
                  fill (i + 1) rest
              | rest -> (i, rest)
            in
            try
              let rec go j xs =
                match xs with
                | [] -> Array.iter Spsc.close ins
                | xs ->
                    let k, rest = fill 0 xs in
                    Spsc.push_chunk ins.(j mod w) buf ~pos:0 ~len:k;
                    go (j + 1) rest
              in
              go 0 xs
            with Spsc.Closed -> Array.iter Spsc.close ins)
      in
      let buf = Array.make batch None in
      let acc = ref [] in
      let failed = ref false in
      (try
         let chunks = (n + batch - 1) / batch in
         for j = 0 to chunks - 1 do
           let expect = min batch (n - (j * batch)) in
           let got = ref 0 in
           while !got < expect do
             let m = Spsc.pop_chunk outs.(j mod w) buf ~pos:!got ~len:(expect - !got) in
             if m = 0 then raise Exit;
             got := !got + m
           done;
           for i = 0 to expect - 1 do
             (match buf.(i) with Some y -> acc := y :: !acc | None -> assert false);
             buf.(i) <- None
           done
         done
       with Exit ->
         failed := true;
         Array.iter Spsc.close ins;
         Array.iter Spsc.close outs);
      Domain.join feeder;
      let failures =
        Array.to_list domains
        |> List.filter_map (fun d -> try ignore (Domain.join d); None with e -> Some e)
      in
      (match List.find_opt (function Spsc.Closed -> false | _ -> true) failures with
      | Some e -> raise e
      | None -> (
          match failures with
          | e :: _ -> raise e
          | [] -> if !failed then failwith "Farm_mc.map_stream: lane closed without a failure"));
      List.rev !acc

let pipeline_stage ~workers f xs = map_stream ~workers f xs
