module Rng = Aspipe_util.Rng
module Variate = Aspipe_util.Variate

type arrival = Immediate | Spaced of float | Poisson of float

type t = { items : int; arrival : arrival; item_bytes : float; batch : int }

let make ?(arrival = Immediate) ?(item_bytes = 1e5) ?(batch = 1) ~items () =
  if items <= 0 then invalid_arg "Stream_spec.make: items must be positive";
  if item_bytes < 0.0 then invalid_arg "Stream_spec.make: negative item size";
  if batch <= 0 then invalid_arg "Stream_spec.make: batch must be positive";
  (match arrival with
  | Spaced dt when dt < 0.0 -> invalid_arg "Stream_spec.make: negative spacing"
  | Poisson rate when rate <= 0.0 -> invalid_arg "Stream_spec.make: Poisson rate must be positive"
  | Immediate | Spaced _ | Poisson _ -> ());
  { items; arrival; item_bytes; batch }

let arrival_times t rng =
  match t.arrival with
  | Immediate -> Array.make t.items 0.0
  | Spaced dt -> Array.init t.items (fun i -> dt *. Float.of_int i)
  | Poisson rate ->
      let clock = ref 0.0 in
      Array.init t.items (fun _ ->
          clock := !clock +. Variate.exponential rng ~rate;
          !clock)

let pp ppf t =
  let arrival =
    match t.arrival with
    | Immediate -> "immediate"
    | Spaced dt -> Printf.sprintf "spaced(%g)" dt
    | Poisson rate -> Printf.sprintf "poisson(%g)" rate
  in
  Format.fprintf ppf "%d items, %s, %gB each" t.items arrival t.item_bytes;
  if t.batch > 1 then Format.fprintf ppf ", batch %d" t.batch
