(* A double-ended work queue on a growable ring buffer.

   The owner pushes and pops at the bottom (LIFO, cache-warm freshest work);
   thieves steal from the top (FIFO, oldest and usually largest tasks) — the
   classic work-stealing discipline. The structure itself is not
   synchronised: {!Pool} serialises all access under its scheduler lock,
   because campaign tasks are whole experiments (milliseconds to seconds),
   so contention on the lock is noise next to the work it guards. *)

type 'a t = {
  mutable buf : 'a option array;
  mutable top : int;     (* index of the oldest element (steal end) *)
  mutable size : int;
}

let create () = { buf = Array.make 16 None; top = 0; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let grow t =
  let cap = Array.length t.buf in
  let bigger = Array.make (2 * cap) None in
  for i = 0 to t.size - 1 do
    bigger.(i) <- t.buf.((t.top + i) mod cap)
  done;
  t.buf <- bigger;
  t.top <- 0

let push t x =
  if t.size = Array.length t.buf then grow t;
  let bottom = (t.top + t.size) mod Array.length t.buf in
  t.buf.(bottom) <- Some x;
  t.size <- t.size + 1

let pop t =
  if t.size = 0 then None
  else begin
    let bottom = (t.top + t.size - 1) mod Array.length t.buf in
    let x = t.buf.(bottom) in
    t.buf.(bottom) <- None;
    t.size <- t.size - 1;
    x
  end

let steal t =
  if t.size = 0 then None
  else begin
    let x = t.buf.(t.top) in
    t.buf.(t.top) <- None;
    t.top <- (t.top + 1) mod Array.length t.buf;
    t.size <- t.size - 1;
    x
  end
