(* The multicore campaign runner: fan the experiment registry out over a
   domain pool and reassemble the sequential report byte for byte.

   Each experiment becomes one pool task built from [Registry.job]: a pure
   closure that creates every bit of mutable state it needs (RNG, DES
   engine, event bus, metrics) inside itself and returns its complete
   output as bytes. Results are collected by registry index, so the printed
   campaign is identical whatever the interleaving — [--jobs 1] and
   [--jobs N] must and do produce the same bytes.

   While the pool is up, [Common.par_map] is pool-backed, so experiments
   that split their replications/sweep points fan those out over the same
   workers (the calling worker helps, so nesting cannot deadlock). Child
   output is re-emitted into the parent's capture buffer in index order.

   The runner watches itself through [Aspipe_obs]: per-domain utilisation
   gauges, steal/cache counters, a per-experiment wall-clock histogram and
   a speedup gauge, all rendered in the campaign summary. *)

module Registry = Aspipe_exp.Registry
module Common = Aspipe_exp.Common
module Out = Aspipe_util.Out
module Metrics = Aspipe_obs.Metrics
module Prof = Aspipe_prof.Prof

type outcome = {
  id : string;
  title : string;
  output : string;
  elapsed : float;   (* seconds spent computing; 0 when served from cache *)
  cached : bool;
}

type report = {
  outcomes : outcome list;
  jobs : int;        (* requested *)
  workers : int;     (* actually used after the oversubscription cap *)
  wall_seconds : float;
  serial_seconds : float;
  speedup : float;
  cache_hits : int;
  utilisation : float array;
  snapshot : Metrics.snapshot;
}

let now () = Unix.gettimeofday ()

let select ?only () =
  match only with
  | None -> Registry.all
  | Some ids ->
      List.map
        (fun id ->
          match Registry.find id with
          | Some e -> e
          | None -> invalid_arg (Printf.sprintf "unknown experiment id: %s" id))
        ids

(* One experiment as a pool task: serve from the cache when the scenario +
   code-version key hits, otherwise run captured and store. *)
let task ~cache ~quick e () =
  (* [Pool.timed] excludes time spent helping other tasks during nested
     fan-out, so [elapsed] is this experiment's own compute and the serial
     sum (hence the speedup figure) stays honest under helping. *)
  let run_fresh () = Pool.timed (fun () -> Registry.job e ~quick ()) in
  match cache with
  | None ->
      let output, elapsed = run_fresh () in
      { id = e.Registry.id; title = e.Registry.title; output; elapsed; cached = false }
  | Some c -> (
      let key = Cache.key c ~id:e.Registry.id ~title:e.Registry.title ~quick in
      match Cache.find c key with
      | Some output ->
          { id = e.Registry.id; title = e.Registry.title; output; elapsed = 0.0; cached = true }
      | None ->
          let output, elapsed = run_fresh () in
          Cache.store c key output;
          { id = e.Registry.id; title = e.Registry.title; output; elapsed; cached = false })

let pool_par_map pool =
  {
    Common.pmap =
      (fun f xs ->
        (* Children run under their own capture; the parent re-emits their
           output in index order, so a printing replication body stays
           deterministic too. The re-emit loop is one of the contention
           suspects, so the profiler times it. *)
        let wrapped =
          Pool.map_list pool
            ~name:(fun i -> Printf.sprintf "sub%d" i)
            (fun x ->
              let buffer = Buffer.create 256 in
              let y = Out.with_buffer buffer (fun () -> f x) in
              (Buffer.contents buffer, y))
            xs
        in
        let t0 = if Prof.enabled () then Prof.now () else 0.0 in
        List.iter (fun (out, _) -> Out.print_string out) wrapped;
        if t0 > 0.0 && Prof.enabled () then
          Prof.record Prof.Out_flush ~label:"re-emit" ~t0 ~t1:(Prof.now ())
            ~a:(List.fold_left (fun acc (out, _) -> acc + String.length out) 0 wrapped)
            ~b:(List.length wrapped) ~words:0.0;
        List.map snd wrapped);
  }

let default_jobs () = Domain.recommended_domain_count ()

(* The inline (no-pool) path still records per-experiment task spans, so a
   [--jobs 1] profile is comparable with a pooled one. *)
let run_task_recorded ~label t =
  let probe = if Prof.enabled () then Some (Prof.now (), Gc.quick_stat ()) else None in
  let y = t () in
  (match probe with
  | Some (t0, g0) when Prof.enabled () ->
      let g1 = Gc.quick_stat () in
      Prof.record Prof.Task ~label ~t0 ~t1:(Prof.now ())
        ~a:(g1.Gc.minor_collections - g0.Gc.minor_collections)
        ~b:(g1.Gc.major_collections - g0.Gc.major_collections)
        ~words:(g1.Gc.minor_words -. g0.Gc.minor_words)
  | _ -> ());
  y

let run ?jobs ?(oversubscribe = false) ?cache_dir ?only ~quick () =
  let experiments = select ?only () in
  let jobs = max 1 (match jobs with Some j -> j | None -> default_jobs ()) in
  (* Adaptive worker count: domains beyond the core count only multiply
     stop-the-world GC barriers and scheduler churn (the measured 5x
     jobs-4 inversion on a single-core host), so the pool never
     oversubscribes the machine unless explicitly asked to. *)
  let workers = if oversubscribe then jobs else min jobs (Domain.recommended_domain_count ()) in
  let workers = max 1 workers in
  let cache = Option.bind cache_dir (fun dir -> Cache.open_ ~dir) in
  let ids = Array.of_list (List.map (fun e -> e.Registry.id) experiments) in
  let tasks = List.map (fun e -> task ~cache ~quick e) experiments in
  if Prof.enabled () then begin
    Prof.set_domain ~order:0 "main";
    Prof.record_gc ~label:"campaign start"
  end;
  let t0 = now () in
  let outcomes, pool_stats =
    if workers = 1 then
      ( List.mapi (fun i t -> run_task_recorded ~label:ids.(i) t) tasks,
        None )
    else begin
      let pool = Pool.create ~workers () in
      Common.set_par_map (pool_par_map pool);
      Fun.protect
        ~finally:(fun () ->
          Common.reset_par_map ();
          Pool.shutdown pool)
        (fun () ->
          let outcomes =
            Pool.map_list pool ~name:(fun i -> ids.(i)) (fun t -> t ()) tasks
          in
          (outcomes, Some (Pool.stats pool)))
    end
  in
  if Prof.enabled () then Prof.record_gc ~label:"campaign end";
  let wall_seconds = now () -. t0 in
  let serial_seconds = List.fold_left (fun acc o -> acc +. o.elapsed) 0.0 outcomes in
  let cache_hits = List.length (List.filter (fun o -> o.cached) outcomes) in
  let busy, executed, stolen =
    match pool_stats with
    | Some s -> (s.Pool.busy_seconds, s.Pool.tasks_executed, s.Pool.tasks_stolen)
    | None -> ([| serial_seconds |], [| List.length outcomes |], [| 0 |])
  in
  let utilisation =
    Array.map (fun b -> if wall_seconds > 0.0 then Float.min 1.0 (b /. wall_seconds) else 0.0) busy
  in
  (* A fully-cached campaign has no compute to speed up. *)
  let speedup =
    if wall_seconds > 0.0 && serial_seconds > 0.0 then serial_seconds /. wall_seconds else 1.0
  in
  (* The runner's own telemetry, through the same registry everything else
     uses, so the campaign scheduler is observable like any component. *)
  let metrics = Metrics.create () in
  Metrics.Gauge.set (Metrics.Gauge.get metrics "runner.jobs") (Float.of_int jobs);
  Metrics.Gauge.set (Metrics.Gauge.get metrics "runner.workers") (Float.of_int workers);
  Metrics.Gauge.set (Metrics.Gauge.get metrics "runner.wall_seconds") wall_seconds;
  Metrics.Gauge.set (Metrics.Gauge.get metrics "runner.serial_seconds") serial_seconds;
  Metrics.Gauge.set (Metrics.Gauge.get metrics "runner.speedup") speedup;
  Metrics.Counter.add (Metrics.Counter.get metrics "runner.experiments") (List.length outcomes);
  Metrics.Counter.add (Metrics.Counter.get metrics "runner.cache_hits") cache_hits;
  Array.iteri
    (fun i u ->
      Metrics.Gauge.set
        (Metrics.Gauge.get metrics (Printf.sprintf "runner.domain%d.utilisation" i))
        u;
      Metrics.Counter.add
        (Metrics.Counter.get metrics (Printf.sprintf "runner.domain%d.tasks" i))
        executed.(i);
      Metrics.Counter.add
        (Metrics.Counter.get metrics (Printf.sprintf "runner.domain%d.steals" i))
        stolen.(i))
    utilisation;
  let histogram = Metrics.Histogram.get metrics "runner.experiment_seconds" in
  List.iter (fun o -> if not o.cached then Metrics.Histogram.observe histogram o.elapsed) outcomes;
  {
    outcomes;
    jobs;
    workers;
    wall_seconds;
    serial_seconds;
    speedup;
    cache_hits;
    utilisation;
    snapshot = Metrics.snapshot metrics;
  }

let print_outputs report =
  List.iter (fun o -> Out.print_string o.output) report.outcomes

let summary report =
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer "######## Campaign runner summary ########\n";
  Buffer.add_string buffer
    (Printf.sprintf
       "jobs %d | workers %d | %d experiment(s), %d cached | wall %.2f s, serial %.2f s, speedup %.2fx\n"
       report.jobs report.workers
       (List.length report.outcomes)
       report.cache_hits report.wall_seconds report.serial_seconds report.speedup);
  Array.iteri
    (fun i u -> Buffer.add_string buffer (Printf.sprintf "domain %d utilisation %5.1f%%\n" i (100.0 *. u)))
    report.utilisation;
  Buffer.add_string buffer (Metrics.render report.snapshot);
  Buffer.contents buffer

let print_summary report = Out.print_string (summary report)
