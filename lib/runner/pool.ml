(* A pool of worker domains scheduling tasks over per-worker work-stealing
   deques.

   Submission distributes a batch round-robin across the deques; each worker
   pops its own deque bottom-first and steals oldest-first from the others
   when it runs dry. One mutex serialises the scheduler state (deques,
   counters, shutdown flag) — campaign tasks are whole experiments or
   replication chunks, coarse enough that a scheduler lock costs nothing
   measurable.

   Wakeup discipline: sleepers wait for one of three predicates — claimable
   work exists (workers, helpers), a batch drained (helpers, external
   awaiters), or shutdown. Each predicate only becomes true at a push, at a
   batch's last completion, or at shutdown, so those are the only three
   broadcast sites. Broadcasting on *every* completion (the previous
   scheme) made each task wake every sleeper only to find nothing
   claimable — pure scheduler churn, and measurable once domains
   outnumber cores.

   Worker domains also size their own minor heaps at bootstrap: OCaml 5's
   minor collector is stop-the-world across all domains, and [Gc.set] in
   the spawning domain does not propagate, so each worker raises
   [minor_heap_size] itself to stretch the interval between global minor
   barriers (profiling showed those barriers dominating oversubscribed
   runs).

   Waiting is *helping*: a worker that blocks on a nested [map] (an
   experiment splitting its replications from inside a pool task) executes
   other pending tasks while its batch drains, so nested fan-out can never
   deadlock the fixed-size pool. Results are always collected by input
   index, never by completion order — determinism never depends on the
   scheduling interleaving.

   When [Aspipe_prof] is enabled the pool records task spans (with per-task
   GC deltas), steal hunts, idle/await sleeps and queue-depth samples on
   the executing domain's timeline; every probe sits behind
   [Prof.enabled ()] (lint R7), so a profiler-off run pays one atomic load
   per probe site and allocates nothing. *)

module Prof = Aspipe_prof.Prof

type batch = {
  mutable remaining : int;          (* tasks of this map call not yet finished *)
  mutable failure : exn option;     (* first exception raised by a task *)
}

type task = { run : unit -> unit; label : string; batch : batch }

type t = {
  workers : int;
  deques : task Deque.t array;
  mutex : Mutex.t;
  wake : Condition.t;
  mutable pending : int;            (* tasks pushed and not yet claimed *)
  mutable shutdown : bool;
  mutable rr : int;                 (* round-robin submission cursor *)
  mutable domains : unit Domain.t list;
  busy : float array;               (* per-worker seconds spent executing *)
  executed : int array;             (* per-worker tasks run *)
  stolen : int array;               (* per-worker tasks obtained by stealing *)
}

(* Which pool worker (if any) the current domain is: workers help execute
   other tasks while waiting on a nested batch; external callers just
   sleep. *)
let worker_index : int option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

(* Monotonic seconds — busy accounting measures durations, never dates. *)
let now () = Prof.now ()

(* Exclusive-time accounting. Helping means a worker's clock can tick
   inside another task's timer, so naive span timing double-counts: the
   helped task's seconds land both in its own measurement and in the
   timer it interrupted, and "speedup" can exceed the worker count. Each
   in-flight timer owns a frame accumulating the time nested foreign
   tasks consumed; subtracting it makes per-worker busy counters and
   {!timed} spans *exclusive*, summing to real compute seconds. A task
   frame charges its whole duration to the enclosing frame (all of it is
   foreign to the interrupted timer); a measurement frame charges only
   the foreign time it absorbed — its own work belongs to its parent. *)
let frames : float ref list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let with_frame ~foreign f =
  let stack = Domain.DLS.get frames in
  let inner = ref 0.0 in
  stack := inner :: !stack;
  let t0 = now () in
  let result = try Ok (f ()) with e -> Error e in
  let dt = now () -. t0 in
  stack := List.tl !stack;
  (match !stack with
  | parent :: _ -> parent := !parent +. (if foreign then dt else !inner)
  | [] -> ());
  (result, dt -. !inner)

let timed f =
  match with_frame ~foreign:false f with
  | Ok y, exclusive -> (y, exclusive)
  | Error e, _ -> raise e

(* Claim a task with the scheduler lock held: own deque first (newest
   first), then steal the oldest task from the other deques. Claims are
   where queue depth and steal traffic are visible, so the profiler
   samples here. *)
let claim_locked t idx =
  let mine = idx mod t.workers in
  if Prof.enabled () then begin
    let ts = Prof.now () in
    Prof.record Prof.Queue_sample ~label:"" ~t0:ts ~t1:ts
      ~a:(Deque.length t.deques.(mine))
      ~b:t.pending ~words:0.0
  end;
  match Deque.pop t.deques.(mine) with
  | Some task ->
      t.pending <- t.pending - 1;
      t.executed.(mine) <- t.executed.(mine) + 1;
      Some task
  | None ->
      let record_hunt ~hit probes =
        if Prof.enabled () then begin
          let ts = Prof.now () in
          Prof.record Prof.Steal ~label:"" ~t0:ts ~t1:ts
            ~a:(if hit then 1 else 0)
            ~b:probes ~words:0.0
        end
      in
      let rec hunt k =
        if k = t.workers then begin
          record_hunt ~hit:false (t.workers - 1);
          None
        end
        else
          let victim = (mine + k) mod t.workers in
          match Deque.steal t.deques.(victim) with
          | Some task ->
              t.pending <- t.pending - 1;
              t.executed.(mine) <- t.executed.(mine) + 1;
              t.stolen.(mine) <- t.stolen.(mine) + 1;
              record_hunt ~hit:true k;
              Some task
          | None -> hunt (k + 1)
      in
      hunt 1

(* Run one task and account its completion. Exceptions are recorded on the
   batch (first one wins) and re-raised by the batch's [map] caller. The
   batch's last completion is the only one anyone can be waiting for, so
   only it broadcasts. *)
let execute t idx task =
  let probe = if Prof.enabled () then Some (Prof.now (), Gc.quick_stat ()) else None in
  let outcome, exclusive =
    with_frame ~foreign:true (fun () -> try task.run (); None with e -> Some e)
  in
  let outcome = match outcome with Ok o -> o | Error _ -> assert false in
  (match probe with
  | Some (t0, g0) when Prof.enabled () ->
      let g1 = Gc.quick_stat () in
      Prof.record Prof.Task ~label:task.label ~t0 ~t1:(Prof.now ())
        ~a:(g1.Gc.minor_collections - g0.Gc.minor_collections)
        ~b:(g1.Gc.major_collections - g0.Gc.major_collections)
        ~words:(g1.Gc.minor_words -. g0.Gc.minor_words)
  | _ -> ());
  Mutex.lock t.mutex;
  t.busy.(idx) <- t.busy.(idx) +. exclusive;
  (match outcome with
  | Some e when task.batch.failure = None -> task.batch.failure <- Some e
  | _ -> ());
  task.batch.remaining <- task.batch.remaining - 1;
  if task.batch.remaining = 0 then Condition.broadcast t.wake;
  Mutex.unlock t.mutex

(* One [Condition.wait], recorded as a sleep span of the given [kind] when
   the profiler is on. Called with the scheduler lock held. *)
let wait_recorded t kind =
  let t0 = if Prof.enabled () then Prof.now () else 0.0 in
  Condition.wait t.wake t.mutex;
  if t0 > 0.0 && Prof.enabled () then
    Prof.record kind ~label:"" ~t0 ~t1:(Prof.now ()) ~a:0 ~b:0 ~words:0.0

let rec worker_loop t idx =
  Mutex.lock t.mutex;
  let rec next () =
    match claim_locked t idx with
    | Some task -> Some task
    | None ->
        if t.shutdown then None
        else begin
          wait_recorded t Prof.Worker_idle;
          next ()
        end
  in
  let claimed = next () in
  Mutex.unlock t.mutex;
  match claimed with
  | None -> ()
  | Some task ->
      execute t idx task;
      worker_loop t idx

(* Default one megaword (8 MB) per worker: large enough that global minor
   collections stop dominating oversubscribed campaigns, small enough to
   stay cache-friendly (BENCH_5.json records the sweep behind this). *)
let default_minor_heap_words = 1 lsl 20

let create ?(minor_heap_words = default_minor_heap_words) ~workers () =
  if workers < 1 then invalid_arg "Pool.create: workers must be >= 1";
  let t =
    {
      workers;
      deques = Array.init workers (fun _ -> Deque.create ());
      mutex = Mutex.create ();
      wake = Condition.create ();
      pending = 0;
      shutdown = false;
      rr = 0;
      domains = [];
      busy = Array.make workers 0.0;
      executed = Array.make workers 0;
      stolen = Array.make workers 0;
    }
  in
  t.domains <-
    List.init workers (fun idx ->
        Domain.spawn (fun () ->
            (* Per-domain: Gc.set here, in the worker, is the only way to
               size this domain's minor arena. *)
            if minor_heap_words > 0 then
              Gc.set { (Gc.get ()) with Gc.minor_heap_size = minor_heap_words };
            Domain.DLS.set worker_index (Some idx);
            if Prof.enabled () then begin
              Prof.set_domain ~order:(idx + 1) (Printf.sprintf "worker %d" idx);
              Prof.record_gc ~label:"worker start"
            end;
            worker_loop t idx;
            if Prof.enabled () then Prof.record_gc ~label:"worker exit"));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.shutdown <- true;
  Condition.broadcast t.wake;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

(* Wait for [batch] to drain. A pool worker helps: it keeps claiming and
   executing any pending task (its own batch's or another's) until the
   batch is empty, sleeping only when there is nothing claimable anywhere.
   An external caller just sleeps on the condition. *)
let await t batch =
  match Domain.DLS.get worker_index with
  | Some idx ->
      let rec help () =
        Mutex.lock t.mutex;
        if batch.remaining = 0 then Mutex.unlock t.mutex
        else begin
          match claim_locked t idx with
          | Some task ->
              Mutex.unlock t.mutex;
              execute t idx task;
              help ()
          | None ->
              wait_recorded t Prof.Await_wait;
              Mutex.unlock t.mutex;
              help ()
        end
      in
      help ()
  | None ->
      Mutex.lock t.mutex;
      while batch.remaining > 0 do
        wait_recorded t Prof.Await_wait
      done;
      Mutex.unlock t.mutex

let map ?(name = fun _ -> "task") t f inputs =
  let n = Array.length inputs in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let batch = { remaining = n; failure = None } in
    Mutex.lock t.mutex;
    Array.iteri
      (fun i x ->
        let label = if Prof.enabled () then name i else "" in
        let task = { run = (fun () -> results.(i) <- Some (f x)); label; batch } in
        Deque.push t.deques.((t.rr + i) mod t.workers) task;
        t.pending <- t.pending + 1)
      inputs;
    t.rr <- (t.rr + n) mod t.workers;
    Condition.broadcast t.wake;
    Mutex.unlock t.mutex;
    await t batch;
    (match batch.failure with Some e -> raise e | None -> ());
    Array.map (function Some y -> y | None -> assert false) results
  end

let map_list ?name t f xs = Array.to_list (map ?name t f (Array.of_list xs))

type stats = {
  workers : int;
  busy_seconds : float array;
  tasks_executed : int array;
  tasks_stolen : int array;
}

let stats t =
  Mutex.lock t.mutex;
  let s =
    {
      workers = t.workers;
      busy_seconds = Array.copy t.busy;
      tasks_executed = Array.copy t.executed;
      tasks_stolen = Array.copy t.stolen;
    }
  in
  Mutex.unlock t.mutex;
  s

let size (t : t) = t.workers
