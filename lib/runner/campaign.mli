(** The multicore campaign runner: the experiment registry fanned out over
    a {!Pool} of domains, reassembled in registry order.

    Determinism guarantee: every experiment runs as a self-contained
    {!Aspipe_exp.Registry.job} closure (own RNG, DES engine, bus, metrics),
    its output captured per run and flushed by registry index — so
    [--jobs 1] and [--jobs N] produce byte-identical campaign output.
    While the pool is live, {!Aspipe_exp.Common.par_map} is pool-backed, so
    experiments additionally split their replications/sweep points across
    the same workers. *)

type outcome = {
  id : string;
  title : string;
  output : string;   (** complete captured output, banner included *)
  elapsed : float;   (** compute seconds; 0 when served from the cache *)
  cached : bool;
}

type report = {
  outcomes : outcome list;     (** in registry order *)
  jobs : int;                  (** requested parallelism *)
  workers : int;               (** domains actually used after the cap *)
  wall_seconds : float;
  serial_seconds : float;      (** sum of per-experiment compute time *)
  speedup : float;             (** serial / wall *)
  cache_hits : int;
  utilisation : float array;   (** per-domain busy/wall, in [0,1] *)
  snapshot : Aspipe_obs.Metrics.snapshot;  (** the runner's own telemetry *)
}

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val run :
  ?jobs:int ->
  ?oversubscribe:bool ->
  ?cache_dir:string ->
  ?only:string list ->
  quick:bool ->
  unit ->
  report
(** Run the selected experiments ([only] defaults to the whole registry;
    unknown ids raise [Invalid_argument]). [jobs] defaults to
    {!default_jobs} and is an upper bound: the pool uses
    [min jobs (Domain.recommended_domain_count ())] workers — domains
    beyond the core count only multiply stop-the-world GC barriers —
    unless [oversubscribe] is set, which takes [jobs] literally. One
    worker runs inline with no pool (the sequential reference path; same
    bytes either way). [cache_dir] enables the content-addressed result
    cache. Nothing is printed — outputs ride in the report. With
    {!Aspipe_prof} enabled, the run records per-domain timelines. *)

val print_outputs : report -> unit
(** Emit every experiment's output, in registry order. *)

val summary : report -> string
(** The runner's observability block: jobs, wall/serial seconds, speedup,
    per-domain utilisation and the metrics-registry rendering. *)

val print_summary : report -> unit
