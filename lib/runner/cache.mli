(** Content-addressed cache of experiment outputs.

    Keys hash the experiment identity (id, title, quick flag) together with
    the digest of the running executable, so a rebuild invalidates every
    entry and [bench --only] reruns of unchanged code skip straight to the
    stored bytes. Entries are plain [<md5hex>.out] text files. *)

type t

val open_ : dir:string -> t option
(** Create/open the cache directory. [None] when the executable cannot be
    digested (no safe code-version key — caching refused). *)

val key : t -> id:string -> title:string -> quick:bool -> string
(** The content address (md5 hex) of one experiment under the current
    code version. *)

val find : t -> string -> string option
(** Stored output for a key, if present and readable. *)

val store : t -> string -> string -> unit
(** [store t key output] persists atomically (write + rename); IO errors
    are swallowed — the cache is an optimisation, never a correctness
    dependency. *)
