(** A pool of OCaml 5 worker domains over per-worker work-stealing deques.

    Tasks are submitted in batches with {!map}; results are collected by
    input index, never by completion order, so a [map] is deterministic
    whenever [f] is (scheduling only affects wall-clock). A worker that
    reaches a nested [map] (replication splitting inside a campaign task)
    {e helps} — it executes other pending tasks while its batch drains —
    so nested fan-out cannot deadlock the fixed-size pool. *)

type t

val default_minor_heap_words : int
(** 2{^20} words (8 MB) per worker — see {!create}. *)

val create : ?minor_heap_words:int -> workers:int -> unit -> t
(** Spawn [workers] domains. Raises [Invalid_argument] if [workers < 1].

    Each worker sizes its own minor heap to [minor_heap_words] at bootstrap
    (OCaml 5's [Gc.set] is per-domain and does not propagate through
    [Domain.spawn]); minor collections are stop-the-world across all
    domains, so a larger per-worker arena stretches the interval between
    global barriers. Pass [0] to keep the runtime default. *)

val size : t -> int

val map : ?name:(int -> string) -> t -> ('a -> 'b) -> 'a array -> 'b array
(** Fan the batch out over the pool and wait for all of it. The first
    exception any task raised is re-raised after the batch drains. Safe to
    call from inside a pool task (the calling worker helps). [name] labels
    task [i]'s profiler span; it is consulted only when {!Aspipe_prof} is
    recording. *)

val map_list : ?name:(int -> string) -> t -> ('a -> 'b) -> 'a list -> 'b list

val timed : (unit -> 'a) -> 'a * float
(** [timed f] is [f ()] and the seconds it took {e exclusive} of any pool
    tasks the calling worker helped execute inside it — the honest compute
    cost of [f] itself, on or off a pool. Re-raises what [f] raises. *)

val shutdown : t -> unit
(** Wake and join every worker. Call only once all [map]s have returned;
    tasks still queued are dropped. *)

type stats = {
  workers : int;
  busy_seconds : float array;   (** per-worker seconds spent executing *)
  tasks_executed : int array;
  tasks_stolen : int array;     (** of [tasks_executed], how many were stolen *)
}

val stats : t -> stats
