(** A pool of OCaml 5 worker domains over per-worker work-stealing deques.

    Tasks are submitted in batches with {!map}; results are collected by
    input index, never by completion order, so a [map] is deterministic
    whenever [f] is (scheduling only affects wall-clock). A worker that
    reaches a nested [map] (replication splitting inside a campaign task)
    {e helps} — it executes other pending tasks while its batch drains —
    so nested fan-out cannot deadlock the fixed-size pool. *)

type t

val create : workers:int -> t
(** Spawn [workers] domains. Raises [Invalid_argument] if [workers < 1]. *)

val size : t -> int

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** Fan the batch out over the pool and wait for all of it. The first
    exception any task raised is re-raised after the batch drains. Safe to
    call from inside a pool task (the calling worker helps). *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list

val timed : (unit -> 'a) -> 'a * float
(** [timed f] is [f ()] and the seconds it took {e exclusive} of any pool
    tasks the calling worker helped execute inside it — the honest compute
    cost of [f] itself, on or off a pool. Re-raises what [f] raises. *)

val shutdown : t -> unit
(** Wake and join every worker. Call only once all [map]s have returned;
    tasks still queued are dropped. *)

type stats = {
  workers : int;
  busy_seconds : float array;   (** per-worker seconds spent executing *)
  tasks_executed : int array;
  tasks_stolen : int array;     (** of [tasks_executed], how many were stolen *)
}

val stats : t -> stats
