(** Work-stealing double-ended queue: the owner pushes/pops at the bottom
    (LIFO), thieves steal from the top (FIFO).

    Not synchronised — {!Pool} serialises all access under its scheduler
    lock (campaign tasks are coarse enough that lock cost is irrelevant). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Owner end: enqueue at the bottom. *)

val pop : 'a t -> 'a option
(** Owner end: newest element first (LIFO), [None] when empty. *)

val steal : 'a t -> 'a option
(** Thief end: oldest element first (FIFO), [None] when empty. *)
