(* Content-addressed campaign result cache.

   A cached entry is the captured stdout of one experiment run, stored under
   a key that hashes the scenario identity (experiment id, title, quick
   flag) together with the code version — the digest of the running
   executable, so any rebuild that changes behaviour changes every key and
   the cache can never serve stale tables. Entries are plain text files
   named <md5hex>.out, human-inspectable and safely deletable.

   With [Aspipe_prof] enabled, lookups and stores record spans (probe
   duration covers the MD5 keying done by the caller's [key] + the file
   read), so cache cost shows up on the owning domain's timeline. *)

module Prof = Aspipe_prof.Prof

type t = { dir : string; code_version : string }

(* The digest of the binary that is executing: the strongest "code
   version" available without build-system help. If the executable cannot
   be read back (e.g. deleted while running), caching is refused rather
   than risking stale hits. *)
let code_version () =
  try Some (Digest.to_hex (Digest.file Sys.executable_name)) with Sys_error _ -> None

let open_ ~dir =
  match code_version () with
  | None -> None
  | Some code_version ->
      (try if not (Sys.is_directory dir) then Sys.remove dir with Sys_error _ -> ());
      (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      Some { dir; code_version }

let key t ~id ~title ~quick =
  Digest.to_hex
    (Digest.string
       (String.concat "|" [ id; title; (if quick then "quick" else "full"); t.code_version ]))

let path t key = Filename.concat t.dir (key ^ ".out")

let find t key =
  let t0 = if Prof.enabled () then Prof.now () else 0.0 in
  let file = path t key in
  let hit =
    if Sys.file_exists file then begin
      try
        let ic = open_in_bin file in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> Some (really_input_string ic (in_channel_length ic)))
      with Sys_error _ | End_of_file -> None
    end
    else None
  in
  if t0 > 0.0 && Prof.enabled () then
    Prof.record Prof.Cache_probe ~label:key ~t0 ~t1:(Prof.now ())
      ~a:(if hit = None then 0 else 1)
      ~b:(match hit with Some s -> String.length s | None -> 0)
      ~words:0.0;
  hit

let store t key output =
  (* Write-then-rename so a crashed run never leaves a truncated entry. *)
  let t0 = if Prof.enabled () then Prof.now () else 0.0 in
  let file = path t key in
  let tmp = file ^ ".tmp" in
  (try
     let oc = open_out_bin tmp in
     Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc output);
     Sys.rename tmp file
   with Sys_error _ -> ());
  if t0 > 0.0 && Prof.enabled () then
    Prof.record Prof.Cache_store ~label:key ~t0 ~t1:(Prof.now ())
      ~a:(String.length output) ~b:0 ~words:0.0
